package sparql

import (
	"strings"
	"testing"

	"ids/internal/dict"
	"ids/internal/expr"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	out, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return out
}

func TestParseMinimal(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/p> ?o . }`)
	if len(q.Select) != 1 || q.Select[0] != "s" {
		t.Fatalf("Select = %v", q.Select)
	}
	pats := q.Patterns()
	if len(pats) != 1 {
		t.Fatalf("patterns = %d", len(pats))
	}
	tp := pats[0]
	if !tp.S.IsVar || tp.S.Var != "s" {
		t.Fatalf("S = %+v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term.Value != "http://x/p" {
		t.Fatalf("P = %+v", tp.P)
	}
	if !tp.O.IsVar || tp.O.Var != "o" {
		t.Fatalf("O = %+v", tp.O)
	}
}

func TestParsePrefixes(t *testing.T) {
	q := mustParse(t, `
		PREFIX up: <http://purl.uniprot.org/core/>
		SELECT ?p WHERE { ?p a up:Protein . }`)
	tp := q.Patterns()[0]
	if tp.P.Term.Value != rdfType {
		t.Fatalf("'a' did not expand: %v", tp.P)
	}
	if tp.O.Term.Value != "http://purl.uniprot.org/core/Protein" {
		t.Fatalf("prefix not expanded: %v", tp.O)
	}
}

func TestParseUndeclaredPrefix(t *testing.T) {
	if _, err := Parse(`SELECT ?p WHERE { ?p a up:Protein . }`); err == nil {
		t.Fatal("undeclared prefix accepted")
	}
}

func TestParseSelectStarAndDistinct(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT * WHERE { ?s ?p ?o . }`)
	if !q.Distinct || len(q.Select) != 0 {
		t.Fatalf("Distinct=%v Select=%v", q.Distinct, q.Select)
	}
}

func TestParseMultiplePatternsAndSemicolon(t *testing.T) {
	q := mustParse(t, `
		SELECT ?s ?n WHERE {
			?s <http://x/name> ?n ;
			   <http://x/age> ?a .
			?s <http://x/knows> ?k .
		}`)
	pats := q.Patterns()
	if len(pats) != 3 {
		t.Fatalf("patterns = %d, want 3", len(pats))
	}
	// Semicolon reuses the subject.
	if pats[1].S.Var != "s" {
		t.Fatalf("semicolon subject = %v", pats[1].S)
	}
}

func TestParseLiteralObjects(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/name> "Ada" . ?s <http://x/age> 36 . }`)
	pats := q.Patterns()
	if pats[0].O.Term.Kind != dict.Literal || pats[0].O.Term.Value != "Ada" {
		t.Fatalf("string literal = %v", pats[0].O)
	}
	if pats[1].O.Term.Value != "36" {
		t.Fatalf("numeric literal = %v", pats[1].O)
	}
}

func TestParseFilterComparison(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a >= 18 && ?a < 65) }`)
	fs := q.Filters()
	if len(fs) != 1 {
		t.Fatalf("filters = %d", len(fs))
	}
	and, ok := fs[0].Expr.(*expr.And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("filter expr = %s", fs[0].Expr)
	}
}

func TestParseFilterUDFCall(t *testing.T) {
	q := mustParse(t, `
		SELECT ?c WHERE {
			?c <http://x/smiles> ?smi .
			FILTER(ncnpr.sw_similarity(?seq, "MKTAYIA") >= 0.9 && ncnpr.dtba(?seq, ?smi) > 7.0)
		}`)
	f := q.Filters()[0]
	names := expr.CallNames(f.Expr)
	if len(names) != 2 || names[0] != "ncnpr.sw_similarity" || names[1] != "ncnpr.dtba" {
		t.Fatalf("call names = %v", names)
	}
}

func TestParseFilterArithmeticPrecedence(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?s <http://x/v> ?x . FILTER(?x + 2 * 3 = 7) }`)
	cmp := q.Filters()[0].Expr.(*expr.Cmp)
	// Left side must be ?x + (2*3).
	add, ok := cmp.L.(*expr.Arith)
	if !ok || add.Op != expr.Add {
		t.Fatalf("L = %s", cmp.L)
	}
	if _, ok := add.R.(*expr.Arith); !ok {
		t.Fatalf("precedence wrong: %s", cmp.L)
	}
}

func TestParseFilterNotAndOr(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?s <http://x/v> ?x . FILTER(!(?x = 1) || ?x > 10) }`)
	or, ok := q.Filters()[0].Expr.(*expr.Or)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("expr = %s", q.Filters()[0].Expr)
	}
	if _, ok := or.Children[0].(*expr.Not); !ok {
		t.Fatalf("first disjunct = %s", or.Children[0])
	}
}

func TestParseFilterBooleansAndStrings(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?s <http://x/v> ?x . FILTER(?x = "yes" || ?x = true) }`)
	or := q.Filters()[0].Expr.(*expr.Or)
	c0 := or.Children[0].(*expr.Cmp).R.(*expr.Const)
	if c0.Val.Kind != expr.KindString || c0.Val.Str != "yes" {
		t.Fatalf("string const = %s", c0.Val)
	}
	c1 := or.Children[1].(*expr.Cmp).R.(*expr.Const)
	if c1.Val.Kind != expr.KindBool || !c1.Val.Bool {
		t.Fatalf("bool const = %s", c1.Val)
	}
}

func TestParseModifiers(t *testing.T) {
	q := mustParse(t, `
		SELECT ?s ?score WHERE { ?s <http://x/score> ?score . }
		ORDER BY DESC(?score) ?s LIMIT 10 OFFSET 5`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("order keys = %d", len(q.OrderBy))
	}
	if !q.OrderBy[0].Desc || q.OrderBy[0].Var != "score" {
		t.Fatalf("key0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Desc || q.OrderBy[1].Var != "s" {
		t.Fatalf("key1 = %+v", q.OrderBy[1])
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit=%d offset=%d", q.Limit, q.Offset)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `
		# find everything
		SELECT ?s WHERE {
			?s ?p ?o . # any triple
		}`)
	if len(q.Patterns()) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestParseEscapedString(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/note> "a\"b\nc" . }`)
	if got := q.Patterns()[0].O.Term.Value; got != "a\"b\nc" {
		t.Fatalf("escaped string = %q", got)
	}
}

func TestParseNegativeAndFloatNumbers(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?s <http://x/v> ?x . FILTER(?x > -7.25 && ?x < 1e3) }`)
	and := q.Filters()[0].Expr.(*expr.And)
	r0 := and.Children[0].(*expr.Cmp).R.(*expr.Const)
	if r0.Val.Num != -7.25 {
		t.Fatalf("negative float = %s", r0.Val)
	}
	r1 := and.Children[1].(*expr.Cmp).R.(*expr.Const)
	if r1.Val.Num != 1000 {
		t.Fatalf("scientific = %s", r1.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?s`,
		`SELECT ?s WHERE`,
		`SELECT ?s WHERE {`,
		`SELECT ?s WHERE { ?s ?p }`,
		`SELECT ?s WHERE { ?s ?p ?o . } LIMIT x`,
		`SELECT ?s WHERE { ?s ?p ?o . } garbage`,
		`SELECT ?s WHERE { FILTER ?x }`,
		`SELECT ?s WHERE { FILTER(?x > ) }`,
		`SELECT ?s WHERE { FILTER(foo) }`,
		`SELECT ?s WHERE { ?s ?p "unterminated }`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseNCNPRStyleQuery(t *testing.T) {
	// The full shape of the paper's inner query.
	q := mustParse(t, `
		PREFIX up: <http://purl.uniprot.org/core/>
		PREFIX ch: <http://chem.example.org/>
		SELECT DISTINCT ?compound ?smiles WHERE {
			?protein a up:Protein .
			?protein up:reviewed "true" .
			?protein up:sequence ?seq .
			?compound ch:inhibits ?protein .
			?compound ch:smiles ?smiles .
			?compound ch:ic50 ?ic50 .
			FILTER(ncnpr.sw(?seq) >= 0.9 && ncnpr.pic50(?ic50) > 6 && ncnpr.dtba(?seq, ?smiles) > 7)
		}
		ORDER BY ?compound LIMIT 2000`)
	if len(q.Patterns()) != 6 {
		t.Fatalf("patterns = %d", len(q.Patterns()))
	}
	if len(q.Filters()) != 1 {
		t.Fatalf("filters = %d", len(q.Filters()))
	}
	conj := expr.Conjuncts(q.Filters()[0].Expr)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
}

func TestParseUnion(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		?s <http://x/type> "thing" .
		{ ?s <http://x/a> ?v . FILTER(?v > 1) }
		UNION
		{ ?s <http://x/b> ?v . }
		UNION
		{ ?s <http://x/c> ?v . }
	}`)
	var u *UnionPattern
	for _, el := range q.Where {
		if up, ok := el.(UnionPattern); ok {
			u = &up
		}
	}
	if u == nil {
		t.Fatalf("no union parsed: %#v", q.Where)
	}
	if len(u.Branches) != 3 {
		t.Fatalf("branches = %d", len(u.Branches))
	}
	// First branch carries its filter.
	hasFilter := false
	for _, el := range u.Branches[0] {
		if _, ok := el.(Filter); ok {
			hasFilter = true
		}
	}
	if !hasFilter {
		t.Fatal("branch filter lost")
	}
	// Outer pattern still present.
	if len(q.Patterns()) != 1 {
		t.Fatalf("outer patterns = %d", len(q.Patterns()))
	}
}

func TestParseNestedUnion(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		{ ?s <http://x/a> ?v . }
		UNION
		{ { ?s <http://x/b> ?v . } UNION { ?s <http://x/c> ?v . } }
	}`)
	u := q.Where[0].(UnionPattern)
	if len(u.Branches) != 2 {
		t.Fatalf("branches = %d", len(u.Branches))
	}
	if _, ok := u.Branches[1][0].(UnionPattern); !ok {
		t.Fatalf("nested union lost: %#v", u.Branches[1])
	}
}

func TestParseUpdateInsert(t *testing.T) {
	u, err := ParseUpdate(`
		PREFIX x: <http://x/>
		INSERT DATA {
			x:a x:p "v1" .
			<http://x/b> <http://x/q> x:a .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != InsertData || len(u.Triples) != 2 {
		t.Fatalf("update = %+v", u)
	}
	if u.Triples[0].S.Value != "http://x/a" || u.Triples[0].O.Value != "v1" {
		t.Fatalf("triple0 = %+v", u.Triples[0])
	}
	if u.Triples[1].O.Kind != dict.IRI {
		t.Fatalf("triple1 object kind = %v", u.Triples[1].O.Kind)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u, err := ParseUpdate(`DELETE DATA { <http://x/a> <http://x/p> "v" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != DeleteData || u.Kind.String() != "DELETE DATA" {
		t.Fatalf("kind = %v", u.Kind)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	bad := []string{
		``,
		`INSERT DATA`,
		`INSERT DATA { }`,
		`INSERT DATA { ?v <http://x/p> "o" . }`,
		`INSERT DATA { <http://x/s> ?p "o" . }`,
		`MODIFY DATA { <http://x/s> <http://x/p> "o" . }`,
		`INSERT DATA { <http://x/s> <http://x/p> "o" . } extra`,
		`INSERT DATA { <http://x/s> <http://x/p> "o" .`,
	}
	for _, s := range bad {
		if _, err := ParseUpdate(s); err == nil {
			t.Errorf("ParseUpdate(%q) succeeded", s)
		}
	}
}

func TestTermOrVarString(t *testing.T) {
	if V("x").String() != "?x" {
		t.Fatal("var string")
	}
	tv := T(dict.Term{Kind: dict.IRI, Value: "http://x"})
	if tv.String() != "<http://x>" {
		t.Fatal("term string")
	}
	tp := TriplePattern{S: V("s"), P: tv, O: V("o")}
	if !strings.Contains(tp.String(), "?s <http://x> ?o") {
		t.Fatalf("pattern string = %s", tp)
	}
}

func TestPatternVars(t *testing.T) {
	tp := TriplePattern{S: V("s"), P: T(dict.Term{Kind: dict.IRI, Value: "p"}), O: V("o")}
	vars := tp.Vars()
	if len(vars) != 2 || vars[0] != "s" || vars[1] != "o" {
		t.Fatalf("Vars = %v", vars)
	}
}

func BenchmarkParse(b *testing.B) {
	q := `
		PREFIX up: <http://purl.uniprot.org/core/>
		SELECT ?c WHERE {
			?p a up:Protein . ?c <http://x/inhibits> ?p .
			FILTER(f.sw(?s) >= 0.9 && f.dtba(?s, ?c) > 7)
		} LIMIT 100`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseSimilar(t *testing.T) {
	q, err := Parse(`
		PREFIX c: <http://x/c/>
		SELECT ?x ?n WHERE {
			SIMILAR(?x, c:42, 10, "fp") .
			?x <http://x/name> ?n .
			SIMILAR(?y, "aspirin", 5)
			SIMILAR(?z, [0.5 -1 2.5e-1], 3) .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	sims := q.Similars()
	if len(sims) != 3 {
		t.Fatalf("Similars = %v", sims)
	}
	a := sims[0]
	if a.Var != "x" || a.Key != "http://x/c/42" || !a.KeyIsIRI || a.K != 10 || a.Store != "fp" {
		t.Fatalf("first SIMILAR = %+v", a)
	}
	b := sims[1]
	if b.Var != "y" || b.Key != "aspirin" || b.KeyIsIRI || b.K != 5 || b.Store != "" {
		t.Fatalf("second SIMILAR = %+v", b)
	}
	c := sims[2]
	if c.Var != "z" || len(c.Vec) != 3 || c.Vec[1] != -1 || c.Vec[2] != 0.25 || c.K != 3 {
		t.Fatalf("third SIMILAR = %+v", c)
	}
	if len(q.Patterns()) != 1 {
		t.Fatalf("Patterns = %v", q.Patterns())
	}
	if s := a.String(); !strings.Contains(s, "<http://x/c/42>") || !strings.Contains(s, `"fp"`) {
		t.Fatalf("String = %s", s)
	}
	if s := c.String(); !strings.Contains(s, "3-dim vector") {
		t.Fatalf("String = %s", s)
	}
}

func TestParseSimilarErrors(t *testing.T) {
	bad := []string{
		`SELECT ?x WHERE { SIMILAR(?x, [], 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2], 0) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2], -4) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2], 2.5) }`,
		`SELECT ?x WHERE { SIMILAR("notavar", [1 2], 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, ?y, 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, u:1, 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, "k", 3, ?v) }`,
		`SELECT ?x WHERE { SIMILAR(?x, "k", 3 `,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2 }`,
		`SELECT ?x WHERE { SIMILAR ?x }`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}
