package sparql

import (
	"fmt"
	"strings"
)

// ErrCode is a stable machine-readable classification of a front-end
// error. Downstream consumers (the conformance taxonomy, servers that
// map errors to HTTP payloads) branch on codes, never on message text.
type ErrCode string

// Error codes.
const (
	// ErrSyntax marks malformed input: the query does not belong to
	// any SPARQL dialect this parser could ever accept.
	ErrSyntax ErrCode = "syntax"
	// ErrUnsupported marks well-formed W3C SPARQL using a feature this
	// subset deliberately does not implement yet. Feature names the
	// construct (e.g. "minus", "property-path", "subquery").
	ErrUnsupported ErrCode = "unsupported-feature"
)

// Error is the structured error type of the sparql package. Every
// error returned by Parse and ParseUpdate is (or wraps) an *Error, so
// callers can classify failures with errors.As and never need to
// match message strings.
type Error struct {
	Code ErrCode
	// Feature is the unsupported construct when Code is
	// ErrUnsupported ("minus", "subquery", ...), empty otherwise.
	Feature string
	// Offset is the byte offset into the query text nearest the
	// problem.
	Offset int
	// Msg is the human-readable description (without the offset
	// prefix).
	Msg string
	// Context is a short excerpt of the input around Offset.
	Context string
	// lexical records whether the error came from the lexer ("at
	// offset") or the parser ("near offset"); message wording only.
	lexical bool
}

func (e *Error) Error() string {
	where := "near"
	if e.lexical {
		where = "at"
	}
	return fmt.Sprintf("sparql: %s offset %d: %s", where, e.Offset, e.Msg)
}

// excerptRadius bounds the Context window on each side of the offset.
const excerptRadius = 20

// excerpt returns a short single-line window of in centred on off.
func excerpt(in string, off int) string {
	if off < 0 {
		off = 0
	}
	if off > len(in) {
		off = len(in)
	}
	lo := off - excerptRadius
	if lo < 0 {
		lo = 0
	}
	hi := off + excerptRadius
	if hi > len(in) {
		hi = len(in)
	}
	s := in[lo:hi]
	s = strings.Map(func(r rune) rune {
		if r == '\n' || r == '\t' || r == '\r' {
			return ' '
		}
		return r
	}, s)
	if lo > 0 {
		s = "…" + s
	}
	if hi < len(in) {
		s += "…"
	}
	return s
}
