package sparql

import (
	"fmt"
	"strings"

	"ids/internal/dict"
	"ids/internal/expr"
)

// TermOrVar is one position of a triple pattern: either a variable or
// a concrete RDF term.
type TermOrVar struct {
	IsVar bool
	Var   string
	Term  dict.Term
}

// V returns a variable position.
func V(name string) TermOrVar { return TermOrVar{IsVar: true, Var: name} }

// T returns a concrete-term position.
func T(t dict.Term) TermOrVar { return TermOrVar{Term: t} }

func (tv TermOrVar) String() string {
	if tv.IsVar {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

// TriplePattern is one BGP pattern.
type TriplePattern struct {
	S, P, O TermOrVar
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Vars returns the variable names used in the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	for _, tv := range []TermOrVar{tp.S, tp.P, tp.O} {
		if tv.IsVar {
			out = append(out, tv.Var)
		}
	}
	return out
}

// Filter wraps a FILTER expression.
type Filter struct {
	Expr expr.Expr
}

// UnionPattern is a set-theoretic branch group:
// { ... } UNION { ... } [UNION { ... }]. Every branch must bind the
// same variable set (a documented subset restriction that keeps the
// solution table rectangular).
type UnionPattern struct {
	Branches [][]Element
}

// OptionalPattern is OPTIONAL { ... }: a left join whose variables may
// stay unbound (null) in the solution.
type OptionalPattern struct {
	Body []Element
}

// SimilarPattern is a SIMILAR(?x, <anchor>, k[, "store"]) clause: an
// approximate nearest-neighbour access path over an attached vector
// store, joinable with ordinary triple patterns. The anchor is either
// a stored key (IRI or string literal) or an inline vector literal
// [v1 v2 ...]; ?x binds to the keys of the top-k hits.
type SimilarPattern struct {
	Var string
	// Key is the anchor key when the query vector is looked up from
	// the store; KeyIsIRI records whether it was written as an IRI.
	Key      string
	KeyIsIRI bool
	// Vec is the inline query vector (nil when Key is set).
	Vec []float32
	// K is the number of neighbours requested.
	K int
	// Store optionally names the vector store; empty selects the
	// engine's only attached store.
	Store string
}

func (sp SimilarPattern) String() string {
	anchor := fmt.Sprintf("%q", sp.Key)
	if sp.KeyIsIRI {
		anchor = "<" + sp.Key + ">"
	}
	if sp.Vec != nil {
		anchor = fmt.Sprintf("[%d-dim vector]", len(sp.Vec))
	}
	if sp.Store != "" {
		return fmt.Sprintf("SIMILAR(?%s, %s, %d, %q)", sp.Var, anchor, sp.K, sp.Store)
	}
	return fmt.Sprintf("SIMILAR(?%s, %s, %d)", sp.Var, anchor, sp.K)
}

// Bind is a BIND(expr AS ?var) element: it extends each solution row
// with a computed column. Expression evaluation errors bind the
// variable to null (the W3C "error means unbound" rule).
type Bind struct {
	Var  string
	Expr expr.Expr
}

func (b Bind) String() string {
	return fmt.Sprintf("BIND(%s AS ?%s)", b.Expr, b.Var)
}

// ValuesCell is one position of a VALUES data row: a concrete RDF
// term, or UNDEF (no binding for this row).
type ValuesCell struct {
	Undef bool
	Term  dict.Term
}

func (c ValuesCell) String() string {
	if c.Undef {
		return "UNDEF"
	}
	return c.Term.String()
}

// ValuesPattern is an inline data block: VALUES ?x { t1 t2 ... } or
// VALUES (?x ?y) { (t1 t2) (t3 t4) ... }. It joins with the rest of
// the group like a table of |Rows| solutions over Vars.
type ValuesPattern struct {
	Vars []string
	Rows [][]ValuesCell
}

func (vp ValuesPattern) String() string {
	var sb strings.Builder
	sb.WriteString("VALUES (")
	for i, v := range vp.Vars {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString("?" + v)
	}
	fmt.Fprintf(&sb, ") { %d rows }", len(vp.Rows))
	return sb.String()
}

// Element is a WHERE-clause element: TriplePattern, Filter,
// UnionPattern, OptionalPattern, SimilarPattern, Bind or
// ValuesPattern.
type Element interface{ isElement() }

func (TriplePattern) isElement()   {}
func (Filter) isElement()          {}
func (UnionPattern) isElement()    {}
func (OptionalPattern) isElement() {}
func (SimilarPattern) isElement()  {}
func (Bind) isElement()            {}
func (ValuesPattern) isElement()   {}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Aggregate is one (FUNC(?v) AS ?name) projection item.
type Aggregate struct {
	Func string // count, sum, avg, min, max (lower-cased)
	Var  string // aggregated variable; empty for COUNT(*)
	As   string
}

// Query is a parsed SELECT query.
type Query struct {
	Prefixes map[string]string
	Select   []string // projection order: vars and aggregate aliases; empty means SELECT *
	Distinct bool
	Where    []Element
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int
	// Aggregates are the aggregate projection items; when non-empty
	// the query is grouped (by GroupBy, or into a single group).
	Aggregates []Aggregate
	GroupBy    []string
}

// Patterns returns the triple patterns of the WHERE clause in order.
func (q *Query) Patterns() []TriplePattern {
	var out []TriplePattern
	for _, e := range q.Where {
		if tp, ok := e.(TriplePattern); ok {
			out = append(out, tp)
		}
	}
	return out
}

// Similars returns the SIMILAR elements of the WHERE clause in order.
func (q *Query) Similars() []SimilarPattern {
	var out []SimilarPattern
	for _, e := range q.Where {
		if sp, ok := e.(SimilarPattern); ok {
			out = append(out, sp)
		}
	}
	return out
}

// Filters returns the FILTER elements of the WHERE clause in order.
func (q *Query) Filters() []Filter {
	var out []Filter
	for _, e := range q.Where {
		if f, ok := e.(Filter); ok {
			out = append(out, f)
		}
	}
	return out
}

// Binds returns the top-level BIND elements of the WHERE clause in
// order.
func (q *Query) Binds() []Bind {
	var out []Bind
	for _, e := range q.Where {
		if b, ok := e.(Bind); ok {
			out = append(out, b)
		}
	}
	return out
}

// ValuesBlocks returns the VALUES elements of the WHERE clause in
// order.
func (q *Query) ValuesBlocks() []ValuesPattern {
	var out []ValuesPattern
	for _, e := range q.Where {
		if vp, ok := e.(ValuesPattern); ok {
			out = append(out, vp)
		}
	}
	return out
}

// rdfType is the IRI the 'a' keyword expands to.
const rdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

type parser struct {
	lex  lexer
	tok  token
	next token
	q    *Query
}

// Parse parses a query string.
func Parse(input string) (*Query, error) {
	p := &parser{lex: lexer{in: input}, q: &Query{Prefixes: map[string]string{}, Limit: -1}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseQuery(); err != nil {
		return nil, err
	}
	return p.q, nil
}

func (p *parser) advance() error {
	p.tok = p.next
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.next = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{
		Code:    ErrSyntax,
		Offset:  p.tok.pos,
		Msg:     fmt.Sprintf(format, args...),
		Context: excerpt(p.lex.in, p.tok.pos),
	}
}

// unsupported reports a recognised-but-unimplemented W3C construct.
// The feature tag is the stable taxonomy key ("minus", "subquery",
// "property-path", ...), independent of message wording.
func (p *parser) unsupported(feature string) error {
	return &Error{
		Code:    ErrUnsupported,
		Feature: feature,
		Offset:  p.tok.pos,
		Msg:     fmt.Sprintf("%s is not supported in this SPARQL subset", strings.ToUpper(feature)),
		Context: excerpt(p.lex.in, p.tok.pos),
	}
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, got %s", what, p.tok)
	}
	return p.advance()
}

func (p *parser) parseQuery() error {
	for p.isKeyword("prefix") {
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
			return p.errf("expected prefix name, got %s", p.tok)
		}
		ns := strings.TrimSuffix(p.tok.text, ":")
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokIRI {
			return p.errf("expected IRI after PREFIX, got %s", p.tok)
		}
		p.q.Prefixes[ns] = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	}
	for _, form := range []string{"ask", "construct", "describe"} {
		if p.isKeyword(form) {
			return p.unsupported(form)
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return err
	}
	if p.isKeyword("distinct") {
		p.q.Distinct = true
		if err := p.advance(); err != nil {
			return err
		}
	}
	switch {
	case p.tok.kind == tokStar:
		if err := p.advance(); err != nil {
			return err
		}
	case p.tok.kind == tokVar || p.tok.kind == tokLParen:
		for p.tok.kind == tokVar || p.tok.kind == tokLParen {
			if p.tok.kind == tokVar {
				p.q.Select = append(p.q.Select, p.tok.text)
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			if err := p.parseAggregate(); err != nil {
				return err
			}
		}
	default:
		return p.errf("expected projection, got %s", p.tok)
	}
	if err := p.expectKeyword("where"); err != nil {
		return err
	}
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	elems, err := p.parseElements()
	if err != nil {
		return err
	}
	p.q.Where = elems
	if err := p.advance(); err != nil { // consume '}'
		return err
	}
	return p.parseModifiers()
}

// parseElements parses WHERE-group contents up to (not consuming) the
// closing brace.
func (p *parser) parseElements() ([]Element, error) {
	saved := p.q.Where
	p.q.Where = nil
	defer func() { p.q.Where = saved }()

	var out []Element
	flush := func() {
		out = append(out, p.q.Where...)
		p.q.Where = nil
	}
	for p.tok.kind != tokRBrace {
		switch {
		case p.tok.kind == tokEOF:
			return nil, p.errf("unterminated group")
		case p.isKeyword("filter"):
			if err := p.parseFilter(); err != nil {
				return nil, err
			}
			flush()
		case p.isKeyword("optional"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokLBrace, "'{' after OPTIONAL"); err != nil {
				return nil, err
			}
			body, err := p.parseElements()
			if err != nil {
				return nil, err
			}
			if len(body) == 0 {
				return nil, p.errf("empty OPTIONAL group")
			}
			if err := p.advance(); err != nil { // '}'
				return nil, err
			}
			out = append(out, OptionalPattern{Body: body})
		case p.isKeyword("similar"):
			if err := p.parseSimilar(); err != nil {
				return nil, err
			}
			flush()
		case p.isKeyword("bind"):
			if err := p.parseBind(); err != nil {
				return nil, err
			}
			flush()
		case p.isKeyword("values"):
			if err := p.parseValues(); err != nil {
				return nil, err
			}
			flush()
		case p.isKeyword("minus"):
			return nil, p.unsupported("minus")
		case p.isKeyword("graph"):
			return nil, p.unsupported("graph")
		case p.isKeyword("service"):
			return nil, p.unsupported("service")
		case p.tok.kind == tokLBrace:
			if p.next.kind == tokIdent && strings.EqualFold(p.next.text, "select") {
				return nil, p.unsupported("subquery")
			}
			u, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			out = append(out, u)
		default:
			if err := p.parseTriple(); err != nil {
				return nil, err
			}
			flush()
		}
	}
	return out, nil
}

// parseUnion parses { group } UNION { group } [UNION { group }]...
func (p *parser) parseUnion() (UnionPattern, error) {
	var u UnionPattern
	for {
		if err := p.expect(tokLBrace, "'{'"); err != nil {
			return u, err
		}
		if p.isKeyword("select") {
			return u, p.unsupported("subquery")
		}
		branch, err := p.parseElements()
		if err != nil {
			return u, err
		}
		if len(branch) == 0 {
			return u, p.errf("empty UNION branch")
		}
		u.Branches = append(u.Branches, branch)
		if err := p.advance(); err != nil { // consume '}'
			return u, err
		}
		if !p.isKeyword("union") {
			break
		}
		if err := p.advance(); err != nil {
			return u, err
		}
	}
	if len(u.Branches) < 2 {
		return u, p.errf("group pattern without UNION (plain groups are not supported)")
	}
	return u, nil
}

// aggregateFuncs are the supported aggregate function names.
var aggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// parseAggregate parses "(FUNC(*|?var) AS ?alias)" in the projection.
func (p *parser) parseAggregate() error {
	if err := p.advance(); err != nil { // '('
		return err
	}
	if p.tok.kind != tokIdent || !aggregateFuncs[strings.ToLower(p.tok.text)] {
		return p.errf("expected aggregate function, got %s", p.tok)
	}
	agg := Aggregate{Func: strings.ToLower(p.tok.text)}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tokLParen, "'(' after aggregate function"); err != nil {
		return err
	}
	switch {
	case p.tok.kind == tokStar:
		if agg.Func != "count" {
			return p.errf("%s(*) is not defined", agg.Func)
		}
		if err := p.advance(); err != nil {
			return err
		}
	case p.tok.kind == tokVar:
		agg.Var = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("expected '*' or variable in aggregate")
	}
	if err := p.expect(tokRParen, "')'"); err != nil {
		return err
	}
	if err := p.expectKeyword("as"); err != nil {
		return err
	}
	if p.tok.kind != tokVar {
		return p.errf("expected alias variable after AS")
	}
	agg.As = p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tokRParen, "')' closing aggregate"); err != nil {
		return err
	}
	p.q.Aggregates = append(p.q.Aggregates, agg)
	p.q.Select = append(p.q.Select, agg.As)
	return nil
}

func (p *parser) parseModifiers() error {
	for {
		switch {
		case p.isKeyword("order"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectKeyword("by"); err != nil {
				return err
			}
			for {
				key := OrderKey{}
				switch {
				case p.isKeyword("desc") || p.isKeyword("asc"):
					key.Desc = strings.EqualFold(p.tok.text, "desc")
					if err := p.advance(); err != nil {
						return err
					}
					if err := p.expect(tokLParen, "'('"); err != nil {
						return err
					}
					if p.tok.kind != tokVar {
						return p.errf("expected variable in ORDER BY")
					}
					key.Var = p.tok.text
					if err := p.advance(); err != nil {
						return err
					}
					if err := p.expect(tokRParen, "')'"); err != nil {
						return err
					}
				case p.tok.kind == tokVar:
					key.Var = p.tok.text
					if err := p.advance(); err != nil {
						return err
					}
				default:
					return p.errf("expected ORDER BY key, got %s", p.tok)
				}
				p.q.OrderBy = append(p.q.OrderBy, key)
				if p.tok.kind != tokVar && !p.isKeyword("desc") && !p.isKeyword("asc") {
					break
				}
			}
		case p.isKeyword("group"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectKeyword("by"); err != nil {
				return err
			}
			if p.tok.kind != tokVar {
				return p.errf("expected variable after GROUP BY")
			}
			for p.tok.kind == tokVar {
				p.q.GroupBy = append(p.q.GroupBy, p.tok.text)
				if err := p.advance(); err != nil {
					return err
				}
			}
		case p.isKeyword("limit"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokNumber {
				return p.errf("expected number after LIMIT")
			}
			p.q.Limit = int(p.tok.num)
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("offset"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokNumber {
				return p.errf("expected number after OFFSET")
			}
			p.q.Offset = int(p.tok.num)
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("values"):
			// Trailing VALUES (W3C "inline data" after the query body)
			// joins like an in-group block; append it to WHERE.
			if err := p.parseValues(); err != nil {
				return err
			}
		case p.tok.kind == tokEOF:
			return nil
		default:
			return p.errf("unexpected trailing token %s", p.tok)
		}
	}
}

// resolveTerm builds a dict.Term from the current token for a triple
// position.
func (p *parser) term() (TermOrVar, error) {
	switch p.tok.kind {
	case tokVar:
		tv := V(p.tok.text)
		return tv, p.advance()
	case tokIRI:
		tv := T(dict.Term{Kind: dict.IRI, Value: p.tok.text})
		return tv, p.advance()
	case tokPName:
		parts := strings.SplitN(p.tok.text, ":", 2)
		base, ok := p.q.Prefixes[parts[0]]
		if !ok {
			return TermOrVar{}, p.errf("undeclared prefix %q", parts[0])
		}
		tv := T(dict.Term{Kind: dict.IRI, Value: base + parts[1]})
		return tv, p.advance()
	case tokString:
		tv := T(dict.Term{Kind: dict.Literal, Value: p.tok.text})
		return tv, p.advance()
	case tokNumber:
		tv := T(dict.Term{Kind: dict.Literal, Value: p.tok.text})
		return tv, p.advance()
	case tokIdent:
		if p.tok.text == "a" {
			tv := T(dict.Term{Kind: dict.IRI, Value: rdfType})
			return tv, p.advance()
		}
		return TermOrVar{}, p.errf("unexpected identifier %q in pattern", p.tok.text)
	default:
		return TermOrVar{}, p.errf("unexpected %s in triple pattern", p.tok)
	}
}

func (p *parser) parseTriple() error {
	s, err := p.term()
	if err != nil {
		return err
	}
	for {
		pr, err := p.term()
		if err != nil {
			return err
		}
		// A path operator directly after the predicate term marks a
		// W3C property path (p/q, p*, p+), which this subset does not
		// implement.
		if p.tok.kind == tokSlash || p.tok.kind == tokStar || p.tok.kind == tokPlus {
			return p.unsupported("property-path")
		}
		o, err := p.term()
		if err != nil {
			return err
		}
		p.q.Where = append(p.q.Where, TriplePattern{S: s, P: pr, O: o})
		// ';' continues with the same subject; '.' ends the group.
		if p.tok.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if p.tok.kind == tokDot {
		return p.advance()
	}
	if p.tok.kind == tokRBrace {
		return nil
	}
	return p.errf("expected '.' after triple pattern, got %s", p.tok)
}

// parseSimilar parses SIMILAR(?x, <iri>|"key"|[v1 v2 ...], k[, "store"]).
func (p *parser) parseSimilar() error {
	if err := p.advance(); err != nil { // consume SIMILAR
		return err
	}
	if err := p.expect(tokLParen, "'(' after SIMILAR"); err != nil {
		return err
	}
	if p.tok.kind != tokVar {
		return p.errf("expected variable as first SIMILAR argument, got %s", p.tok)
	}
	sp := SimilarPattern{Var: p.tok.text}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tokComma, "','"); err != nil {
		return err
	}
	switch p.tok.kind {
	case tokIRI:
		sp.Key, sp.KeyIsIRI = p.tok.text, true
		if err := p.advance(); err != nil {
			return err
		}
	case tokPName:
		parts := strings.SplitN(p.tok.text, ":", 2)
		base, ok := p.q.Prefixes[parts[0]]
		if !ok {
			return p.errf("undeclared prefix %q", parts[0])
		}
		sp.Key, sp.KeyIsIRI = base+parts[1], true
		if err := p.advance(); err != nil {
			return err
		}
	case tokString:
		sp.Key = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	case tokLBracket:
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind == tokNumber {
			sp.Vec = append(sp.Vec, float32(p.tok.num))
			if err := p.advance(); err != nil {
				return err
			}
		}
		if len(sp.Vec) == 0 {
			return p.errf("empty vector literal in SIMILAR")
		}
		if err := p.expect(tokRBracket, "']' closing vector literal"); err != nil {
			return err
		}
	default:
		return p.errf("expected key or vector literal in SIMILAR, got %s", p.tok)
	}
	if err := p.expect(tokComma, "','"); err != nil {
		return err
	}
	if p.tok.kind != tokNumber || p.tok.num != float64(int(p.tok.num)) || int(p.tok.num) <= 0 {
		return p.errf("expected positive integer k in SIMILAR, got %s", p.tok)
	}
	sp.K = int(p.tok.num)
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokString {
			return p.errf("expected store name string in SIMILAR, got %s", p.tok)
		}
		sp.Store = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	}
	if err := p.expect(tokRParen, "')' closing SIMILAR"); err != nil {
		return err
	}
	p.q.Where = append(p.q.Where, sp)
	// Optional trailing dot.
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

func (p *parser) parseFilter() error {
	if err := p.advance(); err != nil { // consume FILTER
		return err
	}
	if p.isKeyword("not") || p.isKeyword("exists") {
		return p.unsupported("not-exists")
	}
	if err := p.expect(tokLParen, "'(' after FILTER"); err != nil {
		return err
	}
	e, err := p.parseOr()
	if err != nil {
		return err
	}
	if err := p.expect(tokRParen, "')' closing FILTER"); err != nil {
		return err
	}
	p.q.Where = append(p.q.Where, Filter{Expr: e})
	// Optional trailing dot.
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

// parseBind parses BIND(expr AS ?var).
func (p *parser) parseBind() error {
	if err := p.advance(); err != nil { // consume BIND
		return err
	}
	if err := p.expect(tokLParen, "'(' after BIND"); err != nil {
		return err
	}
	e, err := p.parseOr()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("as"); err != nil {
		return err
	}
	if p.tok.kind != tokVar {
		return p.errf("expected variable after AS in BIND, got %s", p.tok)
	}
	b := Bind{Var: p.tok.text, Expr: e}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tokRParen, "')' closing BIND"); err != nil {
		return err
	}
	p.q.Where = append(p.q.Where, b)
	// Optional trailing dot.
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

// valuesCell parses one VALUES data cell: UNDEF or a concrete term.
func (p *parser) valuesCell() (ValuesCell, error) {
	if p.isKeyword("undef") {
		return ValuesCell{Undef: true}, p.advance()
	}
	tv, err := p.term()
	if err != nil {
		return ValuesCell{}, err
	}
	if tv.IsVar {
		return ValuesCell{}, p.errf("variable ?%s not allowed in VALUES data", tv.Var)
	}
	return ValuesCell{Term: tv.Term}, nil
}

// parseValues parses an inline data block in either form:
//
//	VALUES ?x { t1 t2 ... }
//	VALUES (?x ?y) { (t1 t2) (UNDEF t4) ... }
func (p *parser) parseValues() error {
	if err := p.advance(); err != nil { // consume VALUES
		return err
	}
	vp := ValuesPattern{}
	single := false
	switch p.tok.kind {
	case tokVar:
		single = true
		vp.Vars = []string{p.tok.text}
		if err := p.advance(); err != nil {
			return err
		}
	case tokLParen:
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind == tokVar {
			vp.Vars = append(vp.Vars, p.tok.text)
			if err := p.advance(); err != nil {
				return err
			}
		}
		if len(vp.Vars) == 0 {
			return p.errf("VALUES requires at least one variable")
		}
		if err := p.expect(tokRParen, "')' closing VALUES variable list"); err != nil {
			return err
		}
	default:
		return p.errf("expected variable or '(' after VALUES, got %s", p.tok)
	}
	if err := p.expect(tokLBrace, "'{' opening VALUES data block"); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return p.errf("unterminated VALUES data block")
		}
		if single {
			c, err := p.valuesCell()
			if err != nil {
				return err
			}
			vp.Rows = append(vp.Rows, []ValuesCell{c})
			continue
		}
		if err := p.expect(tokLParen, "'(' opening VALUES data row"); err != nil {
			return err
		}
		var row []ValuesCell
		for p.tok.kind != tokRParen {
			if p.tok.kind == tokEOF {
				return p.errf("unterminated VALUES data row")
			}
			c, err := p.valuesCell()
			if err != nil {
				return err
			}
			row = append(row, c)
		}
		if len(row) != len(vp.Vars) {
			return p.errf("VALUES data row has %d terms, want %d", len(row), len(vp.Vars))
		}
		if err := p.advance(); err != nil { // ')'
			return err
		}
		vp.Rows = append(vp.Rows, row)
	}
	if err := p.advance(); err != nil { // '}'
		return err
	}
	p.q.Where = append(p.q.Where, vp)
	// Optional trailing dot.
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

// Expression grammar: or -> and ('||' and)*; and -> cmp ('&&' cmp)*;
// cmp -> sum (op sum)?; sum -> prod (('+'|'-') prod)*;
// prod -> unary (('*'|'/') unary)*; unary -> '!' unary | primary.
func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []expr.Expr{left}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &expr.Or{Children: children}, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	children := []expr.Expr{left}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &expr.And{Children: children}, nil
}

func (p *parser) parseCmp() (expr.Expr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	var op expr.CmpOp
	switch p.tok.kind {
	case tokEq:
		op = expr.EQ
	case tokNe:
		op = expr.NE
	case tokLt:
		op = expr.LT
	case tokLe:
		op = expr.LE
	case tokGt:
		op = expr.GT
	case tokGe:
		op = expr.GE
	default:
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	return &expr.Cmp{Op: op, L: left, R: right}, nil
}

func (p *parser) parseSum() (expr.Expr, error) {
	left, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := expr.Add
		if p.tok.kind == tokMinus {
			op = expr.Sub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseProd()
		if err != nil {
			return nil, err
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseProd() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := expr.Mul
		if p.tok.kind == tokSlash {
			op = expr.Div
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expr.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.tok.kind == tokBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Not{Child: child}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokVar:
		v := &expr.Var{Name: p.tok.text}
		return v, p.advance()
	case tokNumber:
		c := &expr.Const{Val: expr.Float(p.tok.num)}
		return c, p.advance()
	case tokString:
		c := &expr.Const{Val: expr.String(p.tok.text)}
		return c, p.advance()
	case tokIdent, tokPName:
		name := p.tok.text
		if strings.EqualFold(name, "true") {
			c := &expr.Const{Val: expr.Bool(true)}
			return c, p.advance()
		}
		if strings.EqualFold(name, "false") {
			c := &expr.Const{Val: expr.Bool(false)}
			return c, p.advance()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLBrace && (strings.EqualFold(name, "exists") || strings.EqualFold(name, "not")) {
			return nil, p.unsupported("not-exists")
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected '(' after function name %q", name)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		call := &expr.Call{Name: name}
		if p.tok.kind != tokRParen {
			for {
				arg, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen, "')' closing call"); err != nil {
			return nil, err
		}
		return call, nil
	default:
		return nil, p.errf("unexpected %s in expression", p.tok)
	}
}
