package sparql

import "testing"

// FuzzSPARQLParse throws arbitrary strings at both parser entry
// points. The contract: parse errors are fine, panics and hangs are
// not, and a successfully parsed query re-parses from anywhere (the
// parser has no hidden state).
func FuzzSPARQLParse(f *testing.F) {
	for _, seed := range []string{
		``,
		`SELECT ?s WHERE { ?s ?p ?o . }`,
		`SELECT ?s ?o WHERE { ?s <http://x/tag> ?o . } ORDER BY ?s ?o LIMIT 5`,
		`PREFIX x: <http://x/> SELECT ?s WHERE { ?s x:p "v" . FILTER(?s != x:a) }`,
		`SELECT ?s WHERE { ?s <http://x/p> ?v . FILTER(?v > 3) } ORDER BY DESC(?v)`,
		`INSERT DATA { <http://x/a> <http://x/p> "o" . }`,
		`DELETE DATA { <http://x/a> <http://x/p> "o"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		`SELECT ?x WHERE { SIMILAR(?x, <http://x/compound/42>, 10) }`,
		`SELECT ?x ?n WHERE { SIMILAR(?x, "aspirin", 5, "fingerprints") . ?x <http://x/name> ?n . }`,
		`SELECT ?x WHERE { SIMILAR(?x, [0.1 -2 3.5e-1 4], 3) . }`,
		`PREFIX c: <http://x/c/> SELECT ?x WHERE { SIMILAR(?x, c:42, 7) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [], 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2], 0) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2], 2.5) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [1 2 }`,
		`SELECT ?x WHERE { SIMILAR(?x, "k", 3, ?v) }`,
		`SELECT * WHERE { ?s ?p ?o`,
		`SELECT ?s WHERE { ?s ?p "unterminated }`,
		"SELECT ?s WHERE { ?s ?p \"\x00\xff\" . }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if q, err := Parse(input); err == nil && q == nil {
			t.Fatal("Parse returned nil query without error")
		}
		if u, err := ParseUpdate(input); err == nil && u == nil {
			t.Fatal("ParseUpdate returned nil update without error")
		}
	})
}
