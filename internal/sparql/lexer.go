// Package sparql implements the query language front end of IDS: a
// SPARQL subset covering SELECT/WHERE basic graph patterns, FILTER
// expressions with UDF calls, PREFIX declarations, DISTINCT, ORDER BY,
// LIMIT and OFFSET, plus a SIMILAR(?x, <key|vector>, k) clause that
// exposes vector-store nearest-neighbour search as a joinable pattern.
// The paper's queries (reviewed-protein search, inhibitor retrieval,
// similarity/potency/affinity filters, docking calls) are all
// expressible in this subset.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokIRI              // <...>
	tokPName            // prefix:local
	tokVar              // ?name
	tokString           // "..."
	tokNumber
	tokIdent // keyword or function name (may contain dots)
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokComma
	tokSemicolon
	tokStar
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokAnd
	tokOr
	tokBang
	tokPlus
	tokMinus
	tokSlash
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &Error{
		Code:    ErrSyntax,
		Offset:  pos,
		Msg:     fmt.Sprintf(format, args...),
		Context: excerpt(l.in, pos),
		lexical: true,
	}
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and # comments.
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemicolon, text: ";", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '!':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokNe, text: "!=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokBang, text: "!", pos: start}, nil
	case c == '<':
		// IRI or less-than.
		if end := strings.IndexByte(l.in[l.pos:], '>'); end > 0 && !strings.ContainsAny(l.in[l.pos:l.pos+end], " \t\n") {
			iri := l.in[l.pos+1 : l.pos+end]
			l.pos += end + 1
			return token{kind: tokIRI, text: iri, pos: start}, nil
		}
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '&':
		if l.peekAt(1) == '&' {
			l.pos += 2
			return token{kind: tokAnd, text: "&&", pos: start}, nil
		}
		return token{}, l.errf(start, "stray '&'")
	case c == '|':
		if l.peekAt(1) == '|' {
			l.pos += 2
			return token{kind: tokOr, text: "||", pos: start}, nil
		}
		return token{}, l.errf(start, "stray '|'")
	case c == '?' || c == '$':
		l.pos++
		name := l.takeWhile(isNameChar)
		if name == "" {
			return token{}, l.errf(start, "empty variable name")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.in) && l.in[l.pos] != '"' {
			ch := l.in[l.pos]
			if ch == '\\' && l.pos+1 < len(l.in) {
				l.pos++
				switch l.in[l.pos] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '\\':
					ch = '\\'
				case '"':
					ch = '"'
				default:
					ch = l.in[l.pos]
				}
			}
			sb.WriteByte(ch)
			l.pos++
		}
		if l.pos >= len(l.in) {
			return token{}, l.errf(start, "unterminated string")
		}
		l.pos++
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '-':
		// "-3" / "-.5" are negative literals; a bare "-" is the
		// subtraction operator ("?v - 3").
		if n := l.peekAt(1); n >= '0' && n <= '9' || n == '.' {
			return l.number(start)
		}
		l.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case c >= '0' && c <= '9':
		return l.number(start)
	case c == '.':
		// Dot terminator vs leading-dot number.
		if n := l.peekAt(1); n >= '0' && n <= '9' {
			return l.number(start)
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case isNameStart(rune(c)):
		name := l.takeWhile(func(r byte) bool { return isNameChar(r) || r == '.' || r == ':' })
		// A trailing dot is the statement terminator, not part of the
		// name ("?s <p> abc." style); split it back off.
		for strings.HasSuffix(name, ".") {
			name = name[:len(name)-1]
			l.pos--
		}
		if i := strings.IndexByte(name, ':'); i >= 0 && !strings.Contains(name, "(") {
			return token{kind: tokPName, text: name, pos: start}, nil
		}
		return token{kind: tokIdent, text: name, pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func (l *lexer) number(start int) (token, error) {
	i := l.pos
	if l.in[i] == '-' {
		i++
	}
	seenDigit := false
	for i < len(l.in) && (l.in[i] >= '0' && l.in[i] <= '9') {
		i++
		seenDigit = true
	}
	if i < len(l.in) && l.in[i] == '.' {
		j := i + 1
		for j < len(l.in) && (l.in[j] >= '0' && l.in[j] <= '9') {
			j++
			seenDigit = true
		}
		if j > i+1 {
			i = j
		}
	}
	if i < len(l.in) && (l.in[i] == 'e' || l.in[i] == 'E') {
		j := i + 1
		if j < len(l.in) && (l.in[j] == '+' || l.in[j] == '-') {
			j++
		}
		k := j
		for k < len(l.in) && (l.in[k] >= '0' && l.in[k] <= '9') {
			k++
		}
		if k > j {
			i = k
		}
	}
	if !seenDigit {
		return token{}, l.errf(start, "malformed number")
	}
	text := l.in[l.pos:i]
	l.pos = i
	var f float64
	if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.in) {
		return l.in[l.pos+off]
	}
	return 0
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.in) && pred(l.in[l.pos]) {
		l.pos++
	}
	return l.in[start:l.pos]
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
