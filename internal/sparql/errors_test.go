package sparql

import (
	"errors"
	"testing"

	"ids/internal/dict"
)

func TestParseBind(t *testing.T) {
	q := mustParse(t, `SELECT ?x ?y WHERE { ?x <http://x/p> ?o . BIND(?o + 1 AS ?y) }`)
	binds := q.Binds()
	if len(binds) != 1 {
		t.Fatalf("binds = %d, want 1", len(binds))
	}
	if binds[0].Var != "y" {
		t.Fatalf("bind var = %q, want y", binds[0].Var)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where elements = %d, want 2", len(q.Where))
	}
	if _, ok := q.Where[1].(Bind); !ok {
		t.Fatalf("where[1] = %T, want Bind", q.Where[1])
	}
}

func TestParseValuesSingleVar(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { VALUES ?x { <http://x/a> "b" 3 UNDEF } }`)
	vs := q.ValuesBlocks()
	if len(vs) != 1 {
		t.Fatalf("values blocks = %d, want 1", len(vs))
	}
	vp := vs[0]
	if len(vp.Vars) != 1 || vp.Vars[0] != "x" {
		t.Fatalf("vars = %v", vp.Vars)
	}
	if len(vp.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(vp.Rows))
	}
	if vp.Rows[0][0].Term.Kind != dict.IRI || vp.Rows[0][0].Term.Value != "http://x/a" {
		t.Fatalf("row 0 = %+v", vp.Rows[0][0])
	}
	if vp.Rows[1][0].Term.Kind != dict.Literal || vp.Rows[1][0].Term.Value != "b" {
		t.Fatalf("row 1 = %+v", vp.Rows[1][0])
	}
	if !vp.Rows[3][0].Undef {
		t.Fatalf("row 3 not UNDEF: %+v", vp.Rows[3][0])
	}
}

func TestParseValuesMultiVarAndTrailing(t *testing.T) {
	q := mustParse(t, `
		PREFIX x: <http://x/>
		SELECT ?a ?b WHERE { ?a x:p ?b . VALUES (?a ?b) { (x:1 "u") (UNDEF "v") } }`)
	vs := q.ValuesBlocks()
	if len(vs) != 1 {
		t.Fatalf("values blocks = %d, want 1", len(vs))
	}
	vp := vs[0]
	if len(vp.Vars) != 2 || vp.Vars[0] != "a" || vp.Vars[1] != "b" {
		t.Fatalf("vars = %v", vp.Vars)
	}
	if len(vp.Rows) != 2 {
		t.Fatalf("rows = %d", len(vp.Rows))
	}
	if vp.Rows[0][0].Term.Value != "http://x/1" {
		t.Fatalf("prefix not expanded: %+v", vp.Rows[0][0])
	}
	if !vp.Rows[1][0].Undef || vp.Rows[1][1].Term.Value != "v" {
		t.Fatalf("row 1 = %+v", vp.Rows[1])
	}

	// Trailing form after the solution modifiers.
	q2 := mustParse(t, `SELECT ?s WHERE { ?s <http://x/p> ?o . } LIMIT 5 VALUES ?s { <http://x/a> }`)
	if got := q2.ValuesBlocks(); len(got) != 1 || len(got[0].Rows) != 1 {
		t.Fatalf("trailing VALUES blocks = %+v", got)
	}
	if q2.Limit != 5 {
		t.Fatalf("limit = %d", q2.Limit)
	}
}

func TestUnsupportedFeatureTags(t *testing.T) {
	cases := []struct {
		in      string
		feature string
	}{
		{`ASK { ?s ?p ?o }`, "ask"},
		{`CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }`, "construct"},
		{`DESCRIBE <http://x/a>`, "describe"},
		{`SELECT ?s WHERE { ?s ?p ?o . MINUS { ?s <http://x/q> ?o } }`, "minus"},
		{`SELECT ?s WHERE { GRAPH <http://x/g> { ?s ?p ?o } }`, "graph"},
		{`SELECT ?s WHERE { SERVICE <http://x/sv> { ?s ?p ?o } }`, "service"},
		{`SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } } }`, "subquery"},
		{`SELECT ?s WHERE { { ?s ?p ?o } UNION { SELECT ?s WHERE { ?s ?p ?o } } }`, "subquery"},
		{`SELECT ?s WHERE { ?s <http://x/p>/<http://x/q> ?o . }`, "property-path"},
		{`SELECT ?s WHERE { ?s <http://x/p>* ?o . }`, "property-path"},
		{`SELECT ?s WHERE { ?s <http://x/p>+ ?o . }`, "property-path"},
		{`SELECT ?s WHERE { ?s ?p ?o . FILTER NOT EXISTS { ?s <http://x/q> ?o } }`, "not-exists"},
		{`SELECT ?s WHERE { ?s ?p ?o . FILTER EXISTS { ?s <http://x/q> ?o } }`, "not-exists"},
		{`SELECT ?s WHERE { ?s ?p ?o . FILTER(EXISTS { ?s <http://x/q> ?o }) }`, "not-exists"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want unsupported-feature error", tc.in)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) error %v is not *Error", tc.in, err)
			continue
		}
		if se.Code != ErrUnsupported {
			t.Errorf("Parse(%q) code = %q, want %q (err %v)", tc.in, se.Code, ErrUnsupported, err)
		}
		if se.Feature != tc.feature {
			t.Errorf("Parse(%q) feature = %q, want %q", tc.in, se.Feature, tc.feature)
		}
	}
}

// TestAllErrorPathsStructured sweeps malformed inputs through every
// parser stage and asserts each error is a *Error carrying a code,
// an in-range offset, and non-empty near-offset context.
func TestAllErrorPathsStructured(t *testing.T) {
	bad := []string{
		// Lexer paths.
		`SELECT ?s WHERE { ?s ?p "unterminated }`,
		`SELECT ?s WHERE { ?s ?p ?o . FILTER(?x & 1) }`,
		`SELECT ?s WHERE { ?s ?p ?o . FILTER(?x | 1) }`,
		`SELECT ? WHERE { ?s ?p ?o . }`,
		`SELECT ?s WHERE { ?s ?p ^ }`,
		// Parser paths: projection, WHERE, groups.
		`SELECT`,
		`SELECT ?s`,
		`SELECT ?s WHERE`,
		`SELECT ?s WHERE {`,
		`SELECT ?s WHERE { ?s ?p }`,
		`SELECT ?s WHERE { ?s ?p ?o`,
		`SELECT ?s WHERE { OPTIONAL { } }`,
		`SELECT ?s WHERE { { ?s ?p ?o } }`,
		`SELECT ?s WHERE { { } UNION { ?s ?p ?o } }`,
		`PREFIX x <http://x/> SELECT ?s WHERE { ?s ?p ?o . }`,
		`SELECT ?s WHERE { ?s x:p ?o . }`,
		// Modifiers.
		`SELECT ?s WHERE { ?s ?p ?o . } LIMIT x`,
		`SELECT ?s WHERE { ?s ?p ?o . } OFFSET x`,
		`SELECT ?s WHERE { ?s ?p ?o . } ORDER BY`,
		`SELECT ?s WHERE { ?s ?p ?o . } GROUP BY`,
		`SELECT ?s WHERE { ?s ?p ?o . } garbage`,
		// Aggregates.
		`SELECT (median(?x) AS ?m) WHERE { ?s ?p ?x . }`,
		`SELECT (sum(*) AS ?m) WHERE { ?s ?p ?x . }`,
		`SELECT (count(?x) ?m) WHERE { ?s ?p ?x . }`,
		// Expressions.
		`SELECT ?s WHERE { FILTER ?x }`,
		`SELECT ?s WHERE { FILTER(?x > ) }`,
		`SELECT ?s WHERE { FILTER(foo) }`,
		// BIND.
		`SELECT ?s WHERE { BIND }`,
		`SELECT ?s WHERE { BIND(1 ?x) }`,
		`SELECT ?s WHERE { BIND(1 AS x) }`,
		`SELECT ?s WHERE { BIND(1 AS ?x }`,
		// VALUES.
		`SELECT ?s WHERE { VALUES }`,
		`SELECT ?s WHERE { VALUES ?x { ?y } }`,
		`SELECT ?s WHERE { VALUES ?x { <http://x/a>`,
		`SELECT ?s WHERE { VALUES () { } }`,
		`SELECT ?s WHERE { VALUES (?a ?b) { (<http://x/a>) } }`,
		`SELECT ?s WHERE { VALUES (?a) { <http://x/a> } }`,
		// SIMILAR.
		`SELECT ?x WHERE { SIMILAR(?x, [], 3) }`,
		`SELECT ?x WHERE { SIMILAR(?x, ?y, 3) }`,
		`SELECT ?x WHERE { SIMILAR ?x }`,
	}
	for _, in := range bad {
		_, err := Parse(in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) error %v (%T) is not *Error", in, err, err)
			continue
		}
		if se.Code == "" {
			t.Errorf("Parse(%q) error has empty code", in)
		}
		if se.Offset < 0 || se.Offset > len(in) {
			t.Errorf("Parse(%q) offset %d out of range", in, se.Offset)
		}
		if se.Context == "" {
			t.Errorf("Parse(%q) error carries no context", in)
		}
	}

	// ParseUpdate error paths carry structured errors too.
	badUpdates := []string{
		`INSERT`,
		`INSERT DATA`,
		`INSERT DATA { }`,
		`INSERT DATA { ?s <http://x/p> <http://x/o> . }`,
		`DELETE DATA { FILTER(1 > 0) }`,
		`UPSERT DATA { <http://x/s> <http://x/p> <http://x/o> . }`,
	}
	for _, in := range badUpdates {
		_, err := ParseUpdate(in)
		if err == nil {
			t.Errorf("ParseUpdate(%q) succeeded, want error", in)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("ParseUpdate(%q) error %v (%T) is not *Error", in, err, err)
		}
	}
}

// TestSpacedMinusOperator pins the lexer fix the conformance sweep
// forced: a bare "-" between operands is subtraction, while "-3" and
// "-.5" stay negative literals. Before the fix every spaced
// subtraction died as "malformed number".
func TestSpacedMinusOperator(t *testing.T) {
	good := []string{
		`SELECT ?s WHERE { ?s <http://x/p> ?v . FILTER(?v - 1 > 0) }`,
		`SELECT ?s ?d WHERE { ?s <http://x/p> ?v . BIND(?v - 50 AS ?d) }`,
		`SELECT ?s WHERE { ?s <http://x/p> ?v . FILTER(?v > -3) }`,
		`SELECT ?s WHERE { ?s <http://x/p> ?v . FILTER(?v > -.5) }`,
		`SELECT ?x WHERE { SIMILAR(?x, [0.1 -2 3.5e-1], 3, "fp") }`,
	}
	for _, in := range good {
		if _, err := Parse(in); err != nil {
			t.Errorf("Parse(%q): %v", in, err)
		}
	}
	if _, err := Parse(`SELECT ?s WHERE { ?s <http://x/p> ?v . FILTER(?v - ) }`); err == nil {
		t.Error("dangling minus operand must stay an error")
	}
}
