package exec

import (
	"fmt"
	"hash/fnv"

	"ids/internal/expr"
	"ids/internal/mpp"
)

// joinCostPerRow is the modeled hash-join cost per probed row.
const joinCostPerRow = 1e-7

// sharedVars returns the variables common to both headers.
func sharedVars(a, b *Table) []string {
	var out []string
	for _, v := range a.Vars {
		if b.Col(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// joinKey serializes the shared-variable values of a row.
func joinKey(row []expr.Value, idx []int) string {
	key := make([]byte, 0, len(idx)*10)
	for _, c := range idx {
		v := row[c]
		key = append(key, byte(v.Kind))
		switch v.Kind {
		case expr.KindID:
			key = appendUint(key, uint64(v.ID))
		case expr.KindFloat:
			key = append(key, []byte(fmt.Sprintf("%g", v.Num))...)
		case expr.KindString:
			key = append(key, []byte(v.Str)...)
		case expr.KindBool:
			if v.Bool {
				key = append(key, 1)
			}
		}
		key = append(key, 0xfe)
	}
	return string(key)
}

func hashKey(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// partitionByKey routes each row to the rank owning its join key.
func partitionByKey(p int, rows [][]expr.Value, idx []int) [][][]expr.Value {
	out := make([][][]expr.Value, p)
	for _, row := range rows {
		dst := int(hashKey(joinKey(row, idx)) % uint64(p))
		out[dst] = append(out[dst], row)
	}
	return out
}

// HashJoin joins the rank-partitioned tables left and right on their
// shared variables: both sides are hash-repartitioned across ranks by
// join key (an AllToAll exchange), then joined locally. With no shared
// variables the right side is replicated and a cross product is
// produced (the planner only does this for small right sides).
func HashJoin(r *mpp.Rank, left, right *Table) (*Table, error) {
	shared := sharedVars(left, right)
	outVars := append([]string{}, left.Vars...)
	for _, v := range right.Vars {
		if left.Col(v) < 0 {
			outVars = append(outVars, v)
		}
	}
	out := NewTable(outVars...)

	if len(shared) == 0 {
		// Cross product with replicated right side.
		allRight, err := mpp.AllGatherSlice(r, right.Rows)
		if err != nil {
			return nil, err
		}
		for _, lrow := range left.Rows {
			for _, part := range allRight {
				for _, rrow := range part {
					out.Rows = append(out.Rows, append(append([]expr.Value{}, lrow...), rrow...))
				}
			}
		}
		r.Charge(float64(len(out.Rows)) * joinCostPerRow)
		return out, nil
	}

	p := r.Size()
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.Col(v)
		rIdx[i] = right.Col(v)
	}

	lParts := partitionByKey(p, left.Rows, lIdx)
	rParts := partitionByKey(p, right.Rows, rIdx)
	lRecv, err := mpp.AllToAll(r, lParts)
	if err != nil {
		return nil, err
	}
	rRecv, err := mpp.AllToAll(r, rParts)
	if err != nil {
		return nil, err
	}

	// Build on the (usually smaller) right side, probe with the left.
	build := map[string][][]expr.Value{}
	for _, part := range rRecv {
		for _, row := range part {
			k := joinKey(row, rIdx)
			build[k] = append(build[k], row)
		}
	}
	// Columns of right to append (those not shared).
	var rAppend []int
	for i, v := range right.Vars {
		if left.Col(v) < 0 {
			rAppend = append(rAppend, i)
		}
	}
	probes := 0
	for _, part := range lRecv {
		for _, lrow := range part {
			probes++
			matches := build[joinKey(lrow, lIdx)]
			for _, rrow := range matches {
				row := make([]expr.Value, 0, len(outVars))
				row = append(row, lrow...)
				for _, c := range rAppend {
					row = append(row, rrow[c])
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	r.Charge(float64(probes+len(out.Rows)) * joinCostPerRow)
	return out, nil
}

// LeftJoin joins right into left with OPTIONAL semantics: left rows
// without a match survive with null-filled right columns. Both sides
// hash-repartition by the shared variables; with no shared variables
// every left row pairs with every replicated right row, or survives
// null-extended when the right side is globally empty.
func LeftJoin(r *mpp.Rank, left, right *Table) (*Table, error) {
	shared := sharedVars(left, right)
	outVars := append([]string{}, left.Vars...)
	var rAppend []int
	for i, v := range right.Vars {
		if left.Col(v) < 0 {
			outVars = append(outVars, v)
			rAppend = append(rAppend, i)
		}
	}
	out := NewTable(outVars...)
	nullExtend := func(lrow []expr.Value) []expr.Value {
		row := make([]expr.Value, 0, len(outVars))
		row = append(row, lrow...)
		for range rAppend {
			row = append(row, expr.Null)
		}
		return row
	}

	if len(shared) == 0 {
		allRight, err := mpp.AllGatherSlice(r, right.Rows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, part := range allRight {
			total += len(part)
		}
		for _, lrow := range left.Rows {
			if total == 0 {
				out.Rows = append(out.Rows, nullExtend(lrow))
				continue
			}
			for _, part := range allRight {
				for _, rrow := range part {
					row := append(append([]expr.Value{}, lrow...), rrow...)
					out.Rows = append(out.Rows, row)
				}
			}
		}
		r.Charge(float64(len(out.Rows)) * joinCostPerRow)
		return out, nil
	}

	p := r.Size()
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.Col(v)
		rIdx[i] = right.Col(v)
	}
	lRecv, err := mpp.AllToAll(r, partitionByKey(p, left.Rows, lIdx))
	if err != nil {
		return nil, err
	}
	rRecv, err := mpp.AllToAll(r, partitionByKey(p, right.Rows, rIdx))
	if err != nil {
		return nil, err
	}
	build := map[string][][]expr.Value{}
	for _, part := range rRecv {
		for _, row := range part {
			k := joinKey(row, rIdx)
			build[k] = append(build[k], row)
		}
	}
	probes := 0
	for _, part := range lRecv {
		for _, lrow := range part {
			probes++
			matches := build[joinKey(lrow, lIdx)]
			if len(matches) == 0 {
				out.Rows = append(out.Rows, nullExtend(lrow))
				continue
			}
			for _, rrow := range matches {
				row := make([]expr.Value, 0, len(outVars))
				row = append(row, lrow...)
				for _, c := range rAppend {
					row = append(row, rrow[c])
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	r.Charge(float64(probes+len(out.Rows)) * joinCostPerRow)
	return out, nil
}

// Gather concentrates all rows of the distributed table onto every
// rank (the engine reads results from rank 0).
func Gather(r *mpp.Rank, t *Table) (*Table, error) {
	parts, err := mpp.AllGatherSlice(r, t.Rows)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Vars...)
	for _, part := range parts {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// DistinctGlobal removes duplicates across ranks: rows are hash-
// partitioned so duplicates meet on one rank, then deduplicated
// locally.
func DistinctGlobal(r *mpp.Rank, t *Table) (*Table, error) {
	p := r.Size()
	idx := make([]int, len(t.Vars))
	for i := range idx {
		idx[i] = i
	}
	parts := partitionByKey(p, t.Rows, idx)
	recv, err := mpp.AllToAll(r, parts)
	if err != nil {
		return nil, err
	}
	merged := NewTable(t.Vars...)
	for _, part := range recv {
		merged.Rows = append(merged.Rows, part...)
	}
	return merged.DistinctLocal(), nil
}
