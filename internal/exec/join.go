package exec

import (
	"math"

	"ids/internal/expr"
	"ids/internal/mpp"
)

// joinCostPerRow is the modeled hash-join cost per probed row.
const joinCostPerRow = 1e-7

// sharedVars returns the variables common to both headers.
func sharedVars(a, b *Table) []string {
	var out []string
	for _, v := range a.Vars {
		if b.Col(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// FNV-1a constants (hash/fnv, inlined so key hashing never allocates).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// hashRowKey streams the shared-variable values of a row through
// FNV-1a, producing the 64-bit join key with zero allocations (the
// former implementation built a string key per row). Floats hash by
// bit pattern; keyEqual applies the matching equality.
func hashRowKey(row []expr.Value, idx []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range idx {
		v := row[c]
		h = fnvByte(h, byte(v.Kind))
		switch v.Kind {
		case expr.KindID:
			h = fnvUint64(h, uint64(v.ID))
		case expr.KindFloat:
			h = fnvUint64(h, math.Float64bits(v.Num))
		case expr.KindString:
			h = fnvString(h, v.Str)
		case expr.KindBool:
			if v.Bool {
				h = fnvByte(h, 1)
			}
		}
		h = fnvByte(h, 0xfe)
	}
	return h
}

// keyEqual reports whether two rows agree on their join-key columns —
// the collision guard behind the hashed bucket map.
func keyEqual(a []expr.Value, ai []int, b []expr.Value, bi []int) bool {
	for k := range ai {
		va, vb := a[ai[k]], b[bi[k]]
		if va.Kind != vb.Kind {
			return false
		}
		switch va.Kind {
		case expr.KindID:
			if va.ID != vb.ID {
				return false
			}
		case expr.KindFloat:
			if math.Float64bits(va.Num) != math.Float64bits(vb.Num) {
				return false
			}
		case expr.KindString:
			if va.Str != vb.Str {
				return false
			}
		case expr.KindBool:
			if va.Bool != vb.Bool {
				return false
			}
		}
	}
	return true
}

// buildSide is the hash table of a join's build side: rows bucketed by
// hashed key, with keyEqual guarding hash collisions on probe.
type buildSide struct {
	buckets map[uint64][][]expr.Value
	idx     []int
}

func buildRows(parts [][][]expr.Value, idx []int) buildSide {
	b := buildSide{buckets: map[uint64][][]expr.Value{}, idx: idx}
	for _, part := range parts {
		for _, row := range part {
			k := hashRowKey(row, idx)
			b.buckets[k] = append(b.buckets[k], row)
		}
	}
	return b
}

// matches calls fn for every build row whose key equals probe's.
func (b buildSide) matches(probe []expr.Value, probeIdx []int, fn func(row []expr.Value)) {
	for _, row := range b.buckets[hashRowKey(probe, probeIdx)] {
		if keyEqual(probe, probeIdx, row, b.idx) {
			fn(row)
		}
	}
}

// partitionByKey routes each row to the rank owning its join key.
func partitionByKey(p int, rows [][]expr.Value, idx []int) [][][]expr.Value {
	out := make([][][]expr.Value, p)
	for _, row := range rows {
		dst := int(hashRowKey(row, idx) % uint64(p))
		out[dst] = append(out[dst], row)
	}
	return out
}

// HashJoin joins the rank-partitioned tables left and right on their
// shared variables: both sides are hash-repartitioned across ranks by
// join key (an AllToAll exchange), then joined locally. With no shared
// variables the right side is replicated and a cross product is
// produced (the planner only does this for small right sides).
func HashJoin(r *mpp.Rank, left, right *Table) (*Table, error) {
	shared := sharedVars(left, right)
	outVars := append([]string{}, left.Vars...)
	for _, v := range right.Vars {
		if left.Col(v) < 0 {
			outVars = append(outVars, v)
		}
	}
	out := NewTable(outVars...)

	if len(shared) == 0 {
		// Cross product with replicated right side.
		allRight, err := mpp.AllGatherSlice(r, right.Rows)
		if err != nil {
			return nil, err
		}
		for _, lrow := range left.Rows {
			for _, part := range allRight {
				for _, rrow := range part {
					out.Rows = append(out.Rows, append(append([]expr.Value{}, lrow...), rrow...))
				}
			}
		}
		r.Charge(float64(len(out.Rows)) * joinCostPerRow)
		return out, nil
	}

	p := r.Size()
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.Col(v)
		rIdx[i] = right.Col(v)
	}

	lParts := partitionByKey(p, left.Rows, lIdx)
	rParts := partitionByKey(p, right.Rows, rIdx)
	lRecv, err := mpp.AllToAll(r, lParts)
	if err != nil {
		return nil, err
	}
	rRecv, err := mpp.AllToAll(r, rParts)
	if err != nil {
		return nil, err
	}

	// Build on the (usually smaller) right side, probe with the left.
	build := buildRows(rRecv, rIdx)
	// Columns of right to append (those not shared).
	var rAppend []int
	for i, v := range right.Vars {
		if left.Col(v) < 0 {
			rAppend = append(rAppend, i)
		}
	}
	probes := 0
	for _, part := range lRecv {
		for _, lrow := range part {
			probes++
			build.matches(lrow, lIdx, func(rrow []expr.Value) {
				row := make([]expr.Value, 0, len(outVars))
				row = append(row, lrow...)
				for _, c := range rAppend {
					row = append(row, rrow[c])
				}
				out.Rows = append(out.Rows, row)
			})
		}
	}
	r.Charge(float64(probes+len(out.Rows)) * joinCostPerRow)
	return out, nil
}

// LeftJoin joins right into left with OPTIONAL semantics: left rows
// without a match survive with null-filled right columns. Both sides
// hash-repartition by the shared variables; with no shared variables
// every left row pairs with every replicated right row, or survives
// null-extended when the right side is globally empty.
func LeftJoin(r *mpp.Rank, left, right *Table) (*Table, error) {
	shared := sharedVars(left, right)
	outVars := append([]string{}, left.Vars...)
	var rAppend []int
	for i, v := range right.Vars {
		if left.Col(v) < 0 {
			outVars = append(outVars, v)
			rAppend = append(rAppend, i)
		}
	}
	out := NewTable(outVars...)
	nullExtend := func(lrow []expr.Value) []expr.Value {
		row := make([]expr.Value, 0, len(outVars))
		row = append(row, lrow...)
		for range rAppend {
			row = append(row, expr.Null)
		}
		return row
	}

	if len(shared) == 0 {
		allRight, err := mpp.AllGatherSlice(r, right.Rows)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, part := range allRight {
			total += len(part)
		}
		for _, lrow := range left.Rows {
			if total == 0 {
				out.Rows = append(out.Rows, nullExtend(lrow))
				continue
			}
			for _, part := range allRight {
				for _, rrow := range part {
					row := append(append([]expr.Value{}, lrow...), rrow...)
					out.Rows = append(out.Rows, row)
				}
			}
		}
		r.Charge(float64(len(out.Rows)) * joinCostPerRow)
		return out, nil
	}

	p := r.Size()
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.Col(v)
		rIdx[i] = right.Col(v)
	}
	lRecv, err := mpp.AllToAll(r, partitionByKey(p, left.Rows, lIdx))
	if err != nil {
		return nil, err
	}
	rRecv, err := mpp.AllToAll(r, partitionByKey(p, right.Rows, rIdx))
	if err != nil {
		return nil, err
	}
	build := buildRows(rRecv, rIdx)
	probes := 0
	for _, part := range lRecv {
		for _, lrow := range part {
			probes++
			matched := false
			build.matches(lrow, lIdx, func(rrow []expr.Value) {
				matched = true
				row := make([]expr.Value, 0, len(outVars))
				row = append(row, lrow...)
				for _, c := range rAppend {
					row = append(row, rrow[c])
				}
				out.Rows = append(out.Rows, row)
			})
			if !matched {
				out.Rows = append(out.Rows, nullExtend(lrow))
			}
		}
	}
	r.Charge(float64(probes+len(out.Rows)) * joinCostPerRow)
	return out, nil
}

// Gather concentrates all rows of the distributed table onto every
// rank (the engine reads results from rank 0).
func Gather(r *mpp.Rank, t *Table) (*Table, error) {
	parts, err := mpp.AllGatherSlice(r, t.Rows)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Vars...)
	for _, part := range parts {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// DistinctGlobal removes duplicates across ranks: rows are hash-
// partitioned so duplicates meet on one rank, then deduplicated
// locally.
func DistinctGlobal(r *mpp.Rank, t *Table) (*Table, error) {
	p := r.Size()
	idx := make([]int, len(t.Vars))
	for i := range idx {
		idx[i] = i
	}
	parts := partitionByKey(p, t.Rows, idx)
	recv, err := mpp.AllToAll(r, parts)
	if err != nil {
		return nil, err
	}
	merged := NewTable(t.Vars...)
	for _, part := range recv {
		merged.Rows = append(merged.Rows, part...)
	}
	return merged.DistinctLocal(), nil
}
