package exec

import (
	"fmt"
	"strings"
	"testing"

	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
)

// benchTables builds a left table of n rows and a right table of n/2
// rows sharing the "k" column, so roughly half the probes match.
func benchTables(n int) (*Table, *Table) {
	left := NewTable("k", "a")
	right := NewTable("k", "b")
	for i := 0; i < n; i++ {
		left.Append([]expr.Value{expr.IDVal(dict.ID(i)), expr.Float(float64(i))})
		if i%2 == 0 {
			right.Append([]expr.Value{expr.IDVal(dict.ID(i)), expr.String(fmt.Sprintf("v%d", i))})
		}
	}
	return left, right
}

// joinKeyString is the retired per-row string key builder, kept here
// as the benchmark baseline for BenchmarkHashJoinStringKeys.
func joinKeyString(row []expr.Value, idx []int) string {
	var sb strings.Builder
	for _, c := range idx {
		v := row[c]
		switch v.Kind {
		case expr.KindID:
			fmt.Fprintf(&sb, "i%d|", v.ID)
		case expr.KindFloat:
			fmt.Fprintf(&sb, "f%v|", v.Num)
		case expr.KindString:
			fmt.Fprintf(&sb, "s%s|", v.Str)
		case expr.KindBool:
			fmt.Fprintf(&sb, "b%v|", v.Bool)
		default:
			sb.WriteString("n|")
		}
	}
	return sb.String()
}

func BenchmarkHashJoin(b *testing.B) {
	left, right := benchTables(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mpp.Run(topo(1), mpp.DefaultNet(), 1, func(r *mpp.Rank) error {
			out, err := HashJoin(r, left, right)
			if err != nil {
				return err
			}
			if out.Len() != right.Len() {
				return fmt.Errorf("join produced %d rows, want %d", out.Len(), right.Len())
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoinStringKeys replays the former implementation —
// a string key allocated per build and probe row — over the same
// inputs, to quantify the allocation win of hashed uint64 keys.
func BenchmarkHashJoinStringKeys(b *testing.B) {
	left, right := benchTables(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mpp.Run(topo(1), mpp.DefaultNet(), 1, func(r *mpp.Rank) error {
			lIdx := []int{left.Col("k")}
			rIdx := []int{right.Col("k")}
			build := map[string][][]expr.Value{}
			for _, row := range right.Rows {
				k := joinKeyString(row, rIdx)
				build[k] = append(build[k], row)
			}
			n := 0
			for _, lrow := range left.Rows {
				for _, rrow := range build[joinKeyString(lrow, lIdx)] {
					row := make([]expr.Value, 0, 3)
					row = append(row, lrow...)
					row = append(row, rrow[1])
					n++
					_ = row
				}
			}
			if n != right.Len() {
				return fmt.Errorf("join produced %d rows, want %d", n, right.Len())
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
