package exec

import (
	"context"
	"log/slog"
	"strings"

	"ids/internal/expr"
	"ids/internal/mpp"
	"ids/internal/udf"
)

// FilterOpts controls the FILTER operator's optimizations.
type FilterOpts struct {
	// Reorder enables profiling-driven conjunct reordering (§2.4.3).
	Reorder bool
	// Rebalance selects solution re-balancing before evaluation
	// (§2.4.2).
	Rebalance RebalanceMode
	// SpeedFactor models this rank's relative hardware speed: UDF
	// costs are multiplied by it (1.0 = nominal; 2.0 = half speed).
	// The paper attributes rank throughput differences to "node
	// hardware and differences in the sub-graph within each rank's
	// data shard"; this knob injects the hardware part in experiments.
	SpeedFactor float64
	// Logger, when non-nil, narrates the optimizer decisions this
	// FILTER took (conjunct order chosen, re-balance traffic) at Debug.
	// Callers typically set it on one rank only to avoid N identical
	// lines per query.
	Logger *slog.Logger
	// Ctx is the request context passed to Logger calls, so the obs
	// handler stamps qid and traceparent onto operator-level lines
	// without the caller binding attributes by hand. Nil falls back to
	// context.Background().
	Ctx context.Context
}

// logCtx returns the context FILTER log lines carry.
func (o FilterOpts) logCtx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// FilterStats reports what one rank's FILTER evaluation did.
type FilterStats struct {
	Evaluated int // rows evaluated (after re-balancing)
	Passed    int // rows that survived
	Errors    int // rows dropped due to evaluation errors
	UDFCost   float64
	// Order is the conjunct evaluation order used by this rank
	// (stringified), exposing per-rank independent reordering.
	Order []string
	// RowsBefore is the local row count before §2.4.2 re-balancing.
	RowsBefore int
	// Rebalance reports the rows this rank shipped/received during
	// re-balancing (zero when disabled).
	Rebalance RebalanceInfo
	// RebalanceSeconds is the virtual time the re-balancing step took
	// on this rank, collectives included.
	RebalanceSeconds float64
}

// callRecorder wraps a FuncResolver, capturing each UDF call's name
// and cost so the FILTER loop can attribute profile records and
// rejections per conjunct.
type callRecorder struct {
	inner expr.FuncResolver
	calls []callRec
}

type callRec struct {
	name string
	cost float64
}

func (cr *callRecorder) CallUDF(name string, args []expr.Value) (expr.Value, float64, error) {
	v, cost, err := cr.inner.CallUDF(name, args)
	cr.calls = append(cr.calls, callRec{name, cost})
	return v, cost, err
}

// Filter evaluates e against every local row, keeping rows whose
// effective boolean value is true. UDF calls are profiled per rank
// (execution count, total time, rejections) and their virtual cost is
// charged to the rank clock. Rows whose evaluation errors are dropped,
// following SPARQL semantics. Ranks reorder and re-balance
// independently; the caller synchronizes afterwards.
func Filter(r *mpp.Rank, t *Table, e expr.Expr, funcs expr.FuncResolver,
	prof *udf.Profiler, res expr.Resolver, opts FilterOpts) (*Table, FilterStats, error) {

	if opts.SpeedFactor <= 0 {
		opts.SpeedFactor = 1
	}
	chain := expr.Conjuncts(e)
	if opts.Reorder {
		chain = expr.ReorderChain(chain, prof)
	}
	if opts.Logger != nil && opts.Logger.Enabled(opts.logCtx(), slog.LevelDebug) && len(chain) > 1 {
		order := make([]string, len(chain))
		for i, c := range chain {
			order[i] = c.String()
		}
		opts.Logger.DebugContext(opts.logCtx(), "filter conjunct order",
			"rank", r.ID(), "reordered", opts.Reorder, "order", strings.Join(order, " AND "))
	}

	// Cost-aware re-balancing needs this rank's throughput estimate:
	// seconds per solution across the (reordered) chain, from the
	// profile.
	stats := FilterStats{RowsBefore: t.Len()}
	if opts.Rebalance != RebalanceNone {
		secPerSol := 0.0
		for _, c := range chain {
			secPerSol += expr.EstimateConjunct(c, prof).Cost
		}
		rate := 1e9 // effectively free when nothing is profiled
		if secPerSol > 0 {
			rate = 1 / secPerSol
		}
		vt0 := r.Now()
		var err error
		t, stats.Rebalance, err = RebalanceCounted(r, t, opts.Rebalance, rate)
		if err != nil {
			return nil, FilterStats{}, err
		}
		stats.RebalanceSeconds = r.Now() - vt0
		if opts.Logger != nil && (stats.Rebalance.Sent > 0 || stats.Rebalance.Received > 0) {
			opts.Logger.DebugContext(opts.logCtx(), "filter rebalanced solutions",
				"rank", r.ID(), "rows_before", stats.RowsBefore,
				"sent", stats.Rebalance.Sent, "received", stats.Rebalance.Received,
				"vt_seconds", stats.RebalanceSeconds)
		}
	}

	stats.Order = make([]string, len(chain))
	for i, c := range chain {
		stats.Order[i] = c.String()
	}

	rec := &callRecorder{inner: funcs}
	ctx := &expr.Ctx{Funcs: rec, Terms: res}
	cols := t.colIndex()
	out := NewTable(t.Vars...)
	for _, row := range t.Rows {
		stats.Evaluated++
		ctx.Env = rowEnv{cols: cols, row: row}
		keep := true
		for _, conjunct := range chain {
			rec.calls = rec.calls[:0]
			ok, err := expr.EvalBool(conjunct, ctx)
			rejected := err != nil || !ok
			for _, call := range rec.calls {
				cost := call.cost * opts.SpeedFactor
				prof.Record(call.name, cost, rejected)
				r.Charge(cost)
				stats.UDFCost += cost
			}
			if err != nil {
				stats.Errors++
				keep = false
				break
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
			stats.Passed++
		}
	}
	return out, stats, nil
}
