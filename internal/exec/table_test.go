package exec

import (
	"testing"

	"ids/internal/expr"
)

func row(vals ...expr.Value) []expr.Value { return vals }

func TestTableColAndAppend(t *testing.T) {
	tab := NewTable("a", "b")
	if tab.Col("a") != 0 || tab.Col("b") != 1 || tab.Col("c") != -1 {
		t.Fatal("Col wrong")
	}
	tab.Append(row(expr.Float(1), expr.Float(2)))
	if tab.Len() != 1 {
		t.Fatal("Append failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width-mismatched Append did not panic")
		}
	}()
	tab.Append(row(expr.Float(1)))
}

func TestProject(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.Append(row(expr.Float(1), expr.Float(2), expr.Float(3)))
	out, err := tab.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Vars) != 2 || out.Vars[0] != "c" {
		t.Fatalf("Vars = %v", out.Vars)
	}
	if out.Rows[0][0].Num != 3 || out.Rows[0][1].Num != 1 {
		t.Fatalf("row = %v", out.Rows[0])
	}
	// SELECT * passthrough.
	same, err := tab.Project(nil)
	if err != nil || same != tab {
		t.Fatal("empty projection should return the table itself")
	}
	if _, err := tab.Project([]string{"zz"}); err == nil {
		t.Fatal("unknown var accepted")
	}
}

func TestDistinctLocal(t *testing.T) {
	tab := NewTable("a")
	tab.Append(row(expr.Float(1)))
	tab.Append(row(expr.Float(2)))
	tab.Append(row(expr.Float(1)))
	tab.Append(row(expr.String("1"))) // different kind, not a dup
	out := tab.DistinctLocal()
	if out.Len() != 3 {
		t.Fatalf("distinct = %d rows, want 3", out.Len())
	}
	if out.Rows[0][0].Num != 1 || out.Rows[1][0].Num != 2 {
		t.Fatal("order not preserved")
	}
}

func TestSortBy(t *testing.T) {
	tab := NewTable("x", "y")
	tab.Append(row(expr.Float(2), expr.String("b")))
	tab.Append(row(expr.Float(1), expr.String("c")))
	tab.Append(row(expr.Float(2), expr.String("a")))
	tab.SortBy([]SortKey{{Var: "x"}, {Var: "y", Desc: true}}, nil)
	if tab.Rows[0][0].Num != 1 {
		t.Fatalf("sort primary failed: %v", tab.Rows)
	}
	if tab.Rows[1][1].Str != "b" || tab.Rows[2][1].Str != "a" {
		t.Fatalf("sort secondary desc failed: %v", tab.Rows)
	}
	// Unknown key: stable no-op.
	tab.SortBy([]SortKey{{Var: "nope"}}, nil)
	if tab.Rows[0][0].Num != 1 {
		t.Fatal("unknown sort key shuffled rows")
	}
	// Empty keys: no-op.
	tab.SortBy(nil, nil)
}

func TestSlice(t *testing.T) {
	tab := NewTable("a")
	for i := 0; i < 10; i++ {
		tab.Append(row(expr.Float(float64(i))))
	}
	out := tab.Slice(2, 3)
	if out.Len() != 3 || out.Rows[0][0].Num != 2 {
		t.Fatalf("Slice(2,3) = %v", out.Rows)
	}
	if got := tab.Slice(0, -1); got.Len() != 10 {
		t.Fatal("unlimited slice truncated")
	}
	if got := tab.Slice(20, 5); got.Len() != 0 {
		t.Fatal("past-end offset returned rows")
	}
	if got := tab.Slice(-5, 2); got.Len() != 2 {
		t.Fatal("negative offset mishandled")
	}
	if got := tab.Slice(8, 10); got.Len() != 2 {
		t.Fatal("limit past end mishandled")
	}
}

func TestRowKeyDistinguishesKinds(t *testing.T) {
	a := rowKey(row(expr.Float(1)))
	b := rowKey(row(expr.String("1")))
	c := rowKey(row(expr.IDVal(1)))
	d := rowKey(row(expr.Bool(true)))
	keys := map[string]bool{a: true, b: true, c: true, d: true}
	if len(keys) != 4 {
		t.Fatal("rowKey collides across kinds")
	}
}
