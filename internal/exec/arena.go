package exec

import (
	"sync"

	"ids/internal/dict"
)

// Arena is a slab bump allocator for dict.ID column vectors (and the
// int32 selection scratch the batch operators use). One arena belongs
// to one rank for the duration of one query; Reset recycles every slab
// for the next query, so a warmed arena serves the whole pre-gather
// pipeline without touching the Go heap.
//
// Fresh-growth accounting: the arena counts the bytes and allocations
// it genuinely adds to the heap (new slabs, scratch growth). Operators
// bracket their work with Fresh() deltas, so the per-operator resource
// ledger only ever reports real allocations — reused slab capacity is
// free, which is exactly what keeps the two-ledger invariant
// 0 < op-accounted <= physical delta true on warm queries (see
// internal/obs/resources.go and DESIGN.md §11).
type Arena struct {
	slabs  [][]dict.ID // every slab owned by the arena, reused across Reset
	active int         // slab currently being bumped
	off    int         // offset into the active slab

	freshBytes   int64
	freshMallocs int64

	// Column-header slabs: small [][]dict.ID slices (chunk and batch
	// column vectors) bump-allocated like ID slabs. Header cells point
	// into this arena's own ID slabs, so they share its lifetime.
	hslabs  [][][]dict.ID
	hactive int
	hoff    int

	// Reusable per-operator scratch. sel/selB hold selection vectors
	// (probe-side / build-side row indexes); both grow amortized and
	// survive Reset.
	sel  []int32
	selB []int32
	// parts/chunks are the partition counting-sort counters and send
	// chunks (reused once the preceding exchange's trailing barrier
	// guarantees no rank still reads them).
	parts  []int
	chunks []batchChunk
	// build is the reusable hash-join build structure.
	build *hashBuild
}

// arenaSlabIDs is the minimum slab size in IDs (512 KiB per slab).
const arenaSlabIDs = 64 << 10

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset recycles all slabs for a new query. Previously returned
// vectors become invalid.
func (a *Arena) Reset() {
	a.active = 0
	a.off = 0
	a.hactive = 0
	a.hoff = 0
}

// Fresh returns the cumulative bytes and allocations the arena has
// added to the heap since creation. Operators record deltas across
// their execution to account only genuinely fresh memory.
func (a *Arena) Fresh() (bytes, mallocs int64) {
	return a.freshBytes, a.freshMallocs
}

// AllocIDs returns an n-element ID vector from the arena. The contents
// are unspecified (callers overwrite every cell).
func (a *Arena) AllocIDs(n int) []dict.ID {
	if n == 0 {
		return nil
	}
	for a.active < len(a.slabs) {
		slab := a.slabs[a.active]
		if a.off+n <= len(slab) {
			out := slab[a.off : a.off+n : a.off+n]
			a.off += n
			return out
		}
		a.active++
		a.off = 0
	}
	size := arenaSlabIDs
	if n > size {
		size = n
	}
	slab := make([]dict.ID, size)
	a.freshBytes += int64(size) * 8
	a.freshMallocs++
	a.slabs = append(a.slabs, slab)
	a.active = len(a.slabs) - 1
	a.off = n
	return slab[0:n:n]
}

// arenaHdrSlabCols is the minimum header slab size in column headers
// (4096 × 24 bytes = 96 KiB per slab).
const arenaHdrSlabCols = 4096

// AllocCols returns an n-element column-header slice from the arena.
func (a *Arena) AllocCols(n int) [][]dict.ID {
	if n == 0 {
		return nil
	}
	for a.hactive < len(a.hslabs) {
		slab := a.hslabs[a.hactive]
		if a.hoff+n <= len(slab) {
			out := slab[a.hoff : a.hoff+n : a.hoff+n]
			a.hoff += n
			return out
		}
		a.hactive++
		a.hoff = 0
	}
	size := arenaHdrSlabCols
	if n > size {
		size = n
	}
	slab := make([][]dict.ID, size)
	a.freshBytes += int64(size) * 24
	a.freshMallocs++
	a.hslabs = append(a.hslabs, slab)
	a.hactive = len(a.hslabs) - 1
	a.hoff = n
	return slab[0:n:n]
}

// intScratch returns an n-element int scratch (contents unspecified).
func (a *Arena) intScratch(n int) []int {
	if cap(a.parts) < n {
		a.parts = make([]int, n)
		a.freshBytes += int64(n) * 8
		a.freshMallocs++
	}
	return a.parts[:n]
}

// chunkScratch returns an n-element send-chunk scratch. Callers may
// only reuse it after the exchange consuming the previous chunks has
// fully completed (its trailing barrier is the fence).
func (a *Arena) chunkScratch(n int) []batchChunk {
	if cap(a.chunks) < n {
		a.chunks = make([]batchChunk, n)
		a.freshBytes += int64(n) * 32
		a.freshMallocs++
	}
	return a.chunks[:n]
}

// selSlice returns the primary selection scratch with length 0 and
// capacity at least hint.
func (a *Arena) selSlice(hint int) []int32 {
	if cap(a.sel) < hint {
		a.growSel(&a.sel, hint)
	}
	return a.sel[:0]
}

// selSliceB returns the secondary selection scratch (build-side row
// indexes) with length 0.
func (a *Arena) selSliceB(hint int) []int32 {
	if cap(a.selB) < hint {
		a.growSel(&a.selB, hint)
	}
	return a.selB[:0]
}

func (a *Arena) growSel(s *[]int32, hint int) {
	n := cap(*s) * 2
	if n < hint {
		n = hint
	}
	if n < 1024 {
		n = 1024
	}
	*s = make([]int32, 0, n)
	a.freshBytes += int64(n) * 4
	a.freshMallocs++
}

// saveSel stores grown selection scratch back for reuse; the batch
// operators call it after appending (append may have reallocated).
func (a *Arena) saveSel(s []int32) {
	if cap(s) > cap(a.sel) {
		a.freshBytes += int64(cap(s)-cap(a.sel)) * 4
		a.freshMallocs++
		a.sel = s
	}
}

func (a *Arena) saveSelB(s []int32) {
	if cap(s) > cap(a.selB) {
		a.freshBytes += int64(cap(s)-cap(a.selB)) * 4
		a.freshMallocs++
		a.selB = s
	}
}

// hashBuild is the reusable build side of a batch hash join: open
// chaining over row indexes (heads maps a 64-bit key hash to the first
// build row, next links the rest). The map and chain array are reused
// across joins and across queries; only genuine growth is fresh heap.
type hashBuild struct {
	heads map[uint64]int32
	next  []int32
}

// buildFor readies the arena's hash-build structure for n build rows.
func (a *Arena) buildFor(n int) *hashBuild {
	if a.build == nil {
		a.build = &hashBuild{heads: make(map[uint64]int32, n)}
		// Map internals are deliberately not fresh-counted: footprint
		// estimates must under-estimate, never over-estimate.
	} else {
		clear(a.build.heads)
	}
	if cap(a.build.next) < n {
		a.build.next = make([]int32, n)
		a.freshBytes += int64(n) * 4
		a.freshMallocs++
	}
	a.build.next = a.build.next[:n]
	return a.build
}

// ArenaPool hands out per-rank arena sets keyed by admission slot.
// A query admitted on slot s reuses the arenas the previous slot-s
// query warmed up, so steady-state load runs the whole pre-gather
// pipeline allocation-free. Queries without a slot (engine-direct
// callers, tests) draw from a shared free list.
type ArenaPool struct {
	mu     sync.Mutex
	bySlot map[int][]*Arena
	free   [][]*Arena
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool {
	return &ArenaPool{bySlot: map[int][]*Arena{}}
}

// Get returns a reset arena set of n arenas for the given admission
// slot (slot < 0 means unslotted). The set is exclusively owned until
// Put.
func (p *ArenaPool) Get(slot, n int) []*Arena {
	p.mu.Lock()
	var set []*Arena
	if slot >= 0 {
		if s, ok := p.bySlot[slot]; ok && len(s) >= n {
			set = s
			delete(p.bySlot, slot)
		}
	}
	if set == nil && len(p.free) > 0 {
		for i, s := range p.free {
			if len(s) >= n {
				set = s
				p.free = append(p.free[:i], p.free[i+1:]...)
				break
			}
		}
	}
	p.mu.Unlock()
	if set == nil {
		set = make([]*Arena, n)
		for i := range set {
			set[i] = NewArena()
		}
		return set
	}
	set = set[:n]
	for _, a := range set {
		a.Reset()
	}
	return set
}

// Put returns an arena set to the pool. The caller must guarantee no
// goroutine still reads the arenas' memory (the engine returns sets
// only after the query's MPP world has fully joined).
func (p *ArenaPool) Put(slot int, set []*Arena) {
	if len(set) == 0 {
		return
	}
	p.mu.Lock()
	if slot >= 0 {
		p.bySlot[slot] = set
	} else if len(p.free) < 16 {
		p.free = append(p.free, set)
	}
	p.mu.Unlock()
}
