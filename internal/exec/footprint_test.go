package exec

import (
	"testing"

	"ids/internal/expr"
)

func footprintTable(rows, cols int) *Table {
	vars := make([]string, cols)
	for i := range vars {
		vars[i] = string(rune('a' + i))
	}
	t := NewTable(vars...)
	for r := 0; r < rows; r++ {
		row := make([]expr.Value, cols)
		t.Append(row)
	}
	return t
}

func TestFootprintScalesWithRowsAndWidth(t *testing.T) {
	small, smallM := footprintTable(10, 2).Footprint()
	big, bigM := footprintTable(100, 2).Footprint()
	wide, _ := footprintTable(10, 4).Footprint()
	if small <= 0 || smallM != 11 {
		t.Fatalf("10x2 footprint = (%d, %d), want positive bytes and 11 mallocs", small, smallM)
	}
	if big != small*10 || bigM != 101 {
		t.Errorf("footprint not linear in rows: 10 rows %d, 100 rows %d", small, big)
	}
	if wide <= small {
		t.Errorf("wider rows should cost more: 2 cols %d, 4 cols %d", small, wide)
	}
}

func TestFootprintShallowIgnoresWidth(t *testing.T) {
	narrow, m1 := footprintTable(50, 1).FootprintShallow()
	wide, m2 := footprintTable(50, 8).FootprintShallow()
	if narrow != wide {
		t.Errorf("shallow footprint should not depend on width: %d vs %d", narrow, wide)
	}
	if m1 != 1 || m2 != 1 {
		t.Errorf("shallow mallocs = %d, %d; want 1 (Rows backing array only)", m1, m2)
	}
	deep, _ := footprintTable(50, 8).Footprint()
	if wide >= deep {
		t.Errorf("shallow (%d) should undercut full footprint (%d)", wide, deep)
	}
}

func TestFootprintNilAndEmpty(t *testing.T) {
	var nilT *Table
	if b, m := nilT.Footprint(); b != 0 || m != 0 {
		t.Errorf("nil Footprint = (%d, %d)", b, m)
	}
	if b, m := nilT.FootprintShallow(); b != 0 || m != 0 {
		t.Errorf("nil FootprintShallow = (%d, %d)", b, m)
	}
	empty := NewTable("a")
	if b, m := empty.Footprint(); b != 0 || m != 1 {
		t.Errorf("empty Footprint = (%d, %d), want (0, 1)", b, m)
	}
}

func TestHashBuildFootprint(t *testing.T) {
	if b, m := HashBuildFootprint(0); b != 0 || m != 0 {
		t.Errorf("0 rows = (%d, %d)", b, m)
	}
	if b, m := HashBuildFootprint(-5); b != 0 || m != 0 {
		t.Errorf("negative rows = (%d, %d)", b, m)
	}
	b1, m1 := HashBuildFootprint(100)
	b2, m2 := HashBuildFootprint(200)
	if b1 <= 0 || m1 != 100 || b2 != 2*b1 || m2 != 200 {
		t.Errorf("hash build not linear: (%d,%d) vs (%d,%d)", b1, m1, b2, m2)
	}
}
