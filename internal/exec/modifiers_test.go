package exec

import (
	"testing"

	"ids/internal/expr"
)

// Edge cases of the solution modifiers surfaced by the conformance
// sweep, pinned as table tests: tie-breaking must be deterministic
// (stable sort preserves pre-sort order), OFFSET past the end and
// LIMIT 0 are empty (not errors), and ORDER BY over a variable absent
// from the table is a no-op key, never a crash.

func modTable(vals ...float64) *Table {
	t := NewTable("v", "tag")
	for i, v := range vals {
		tag := "a"
		if i%2 == 1 {
			tag = "b"
		}
		t.Append([]expr.Value{expr.Float(v), expr.String(tag)})
	}
	return t
}

func rowStrings(t *Table) [][2]string {
	out := make([][2]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = [2]string{r[0].String(), r[1].String()}
	}
	return out
}

func TestSortByTiesAreStable(t *testing.T) {
	// Four rows with equal sort keys: their pre-sort order must
	// survive, run after run.
	tab := NewTable("k", "id")
	for _, id := range []string{"r0", "r1", "r2", "r3"} {
		tab.Append([]expr.Value{expr.Float(7), expr.String(id)})
	}
	tab.SortBy([]SortKey{{Var: "k"}}, nil)
	for i, want := range []string{"r0", "r1", "r2", "r3"} {
		if got := tab.Rows[i][1].Str; got != want {
			t.Fatalf("tie order not stable: row %d = %s, want %s", i, got, want)
		}
	}
}

func TestSortByUnboundVariableIsNoop(t *testing.T) {
	tab := modTable(3, 1, 2)
	before := rowStrings(tab)
	// ?nosuch is not a column: the key must be skipped without
	// reordering or panicking.
	tab.SortBy([]SortKey{{Var: "nosuch"}}, nil)
	after := rowStrings(tab)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("ORDER BY unbound variable reordered rows: %v -> %v", before, after)
		}
	}
	// A real secondary key after the unbound primary still applies.
	tab.SortBy([]SortKey{{Var: "nosuch"}, {Var: "v"}}, nil)
	if tab.Rows[0][0].Num != 1 || tab.Rows[2][0].Num != 3 {
		t.Fatalf("secondary key ignored: %v", rowStrings(tab))
	}
}

func TestSliceEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		n              int // source rows 0..n-1
		offset, limit  int
		wantLen        int
		wantFirstValue float64
	}{
		{"limit zero", 5, 0, 0, 0, 0},
		{"offset at end", 5, 5, -1, 0, 0},
		{"offset past end", 5, 99, -1, 0, 0},
		{"offset past end with limit", 5, 99, 3, 0, 0},
		{"negative offset clamps", 5, -3, 2, 2, 0},
		{"limit past end", 5, 0, 99, 5, 0},
		{"unlimited", 5, 0, -1, 5, 0},
		{"window", 5, 2, 2, 2, 2},
		{"tail", 5, 3, -1, 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := NewTable("v")
			for i := 0; i < tc.n; i++ {
				src.Append([]expr.Value{expr.Float(float64(i))})
			}
			got := src.Slice(tc.offset, tc.limit)
			if got.Len() != tc.wantLen {
				t.Fatalf("Slice(%d,%d) len = %d, want %d", tc.offset, tc.limit, got.Len(), tc.wantLen)
			}
			if tc.wantLen > 0 && got.Rows[0][0].Num != tc.wantFirstValue {
				t.Fatalf("Slice(%d,%d) first = %v, want %v", tc.offset, tc.limit, got.Rows[0][0].Num, tc.wantFirstValue)
			}
		})
	}
}

func TestSortThenSliceWindowDeterministic(t *testing.T) {
	// ORDER BY + LIMIT/OFFSET over a table with duplicate keys: the
	// same input always yields the same page (stable sort + slice).
	build := func() *Table {
		tab := NewTable("k", "id")
		for i := 0; i < 12; i++ {
			tab.Append([]expr.Value{expr.Float(float64(i % 3)), expr.String(string(rune('a' + i)))})
		}
		return tab
	}
	var first [][2]string
	for run := 0; run < 3; run++ {
		tab := build()
		tab.SortBy([]SortKey{{Var: "k"}}, nil)
		page := tab.Slice(2, 4)
		got := rowStrings(page)
		if run == 0 {
			first = got
			continue
		}
		for i := range first {
			if first[i] != got[i] {
				t.Fatalf("run %d page diverged: %v vs %v", run, first, got)
			}
		}
	}
}
