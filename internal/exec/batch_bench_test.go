package exec

import (
	"fmt"
	"testing"

	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/udf"
)

// benchGraph builds n entities with age/name literals and a knows
// chain — the same shape as buildGraph but sized for benchmarking.
func benchGraph(n, shards int) *kg.Graph {
	g := kg.New(shards)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	for i := 0; i < n; i++ {
		s := iri(fmt.Sprintf("http://x/person%d", i))
		g.Add(s, iri("http://x/age"), lit(fmt.Sprintf("%d", 20+i%60)))
		g.Add(s, iri("http://x/name"), lit(fmt.Sprintf("p%d", i)))
		if i > 0 {
			g.Add(s, iri("http://x/knows"), iri(fmt.Sprintf("http://x/person%d", i-1)))
		}
	}
	g.Seal()
	return g
}

const benchEntities = 4096

// benchWorld runs body on a 1-rank world, failing the benchmark on
// error. One world per iteration keeps the mpp fixed cost identical
// between row and batch variants, so alloc deltas isolate the operator.
func benchWorld(b *testing.B, body func(r *mpp.Rank) error) {
	b.Helper()
	if _, err := mpp.Run(topo(1), mpp.DefaultNet(), 1, body); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScanRows(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	tp := pat("?s", "http://x/age", "?a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchWorld(b, func(r *mpp.Rank) error {
			_, err := Scan(r, g.Shard(0), g.Dict, tp)
			return err
		})
	}
}

func BenchmarkScanBatch(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	tp := pat("?s", "http://x/age", "?a")
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		benchWorld(b, func(r *mpp.Rank) error {
			_, err := ScanBatch(r, g.Shard(0), g.Dict, tp, a)
			return err
		})
	}
}

func benchFilterExpr() expr.Expr {
	return &expr.Cmp{Op: expr.GE, L: &expr.Var{Name: "a"}, R: &expr.Const{Val: expr.Float(40)}}
}

func BenchmarkFilterRows(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	tp := pat("?s", "http://x/age", "?a")
	e := benchFilterExpr()
	reg := udf.NewRegistry()
	prof := udf.NewProfiler()
	res := expr.DictResolver{Dict: g.Dict}
	var tab *Table
	benchWorld(b, func(r *mpp.Rank) error {
		var err error
		tab, err = Scan(r, g.Shard(0), g.Dict, tp)
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchWorld(b, func(r *mpp.Rank) error {
			_, _, err := Filter(r, tab, e, reg, prof, res, FilterOpts{})
			return err
		})
	}
}

func BenchmarkFilterBatch(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	tp := pat("?s", "http://x/age", "?a")
	e := benchFilterExpr()
	reg := udf.NewRegistry()
	prof := udf.NewProfiler()
	res := expr.NewCachedResolver(expr.DictResolver{Dict: g.Dict})
	// The input batch lives in its own arena so the operator arena can
	// be Reset per iteration without clobbering the input columns.
	ain, a := NewArena(), NewArena()
	var in *Batch
	benchWorld(b, func(r *mpp.Rank) error {
		var err error
		in, err = ScanBatch(r, g.Shard(0), g.Dict, tp, ain)
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		benchWorld(b, func(r *mpp.Rank) error {
			_, _, err := FilterBatch(r, in, e, reg, prof, res, FilterOpts{}, a)
			return err
		})
	}
}

func BenchmarkHashJoinBatch(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	ain, a := NewArena(), NewArena()
	var l, rt *Batch
	benchWorld(b, func(r *mpp.Rank) error {
		var err error
		if l, err = ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/knows", "?t"), ain); err != nil {
			return err
		}
		rt, err = ScanBatch(r, g.Shard(0), g.Dict, pat("?t", "http://x/age", "?v"), ain)
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		benchWorld(b, func(r *mpp.Rank) error {
			out, err := HashJoinBatch(r, l, rt, a)
			if err != nil {
				return err
			}
			if out.Len() == 0 {
				return fmt.Errorf("empty join")
			}
			return nil
		})
	}
}

func BenchmarkAggregateRows(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	var tab *Table
	benchWorld(b, func(r *mpp.Rank) error {
		var err error
		tab, err = Scan(r, g.Shard(0), g.Dict, pat("?s", "http://x/age", "?a"))
		return err
	})
	res := expr.DictResolver{Dict: g.Dict}
	aggs := []AggSpec{{Func: "count", Var: "s", As: "n"}, {Func: "min", Var: "a", As: "lo"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(tab, []string{"a"}, aggs, res); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAllocCeilings pins the warm-path allocation budget of the
// columnar operators. Measured on the 4096-entity bench graph the warm
// operators sit at ~26 (scan), ~33 (filter) and ~48 (join) allocs per
// run — almost all of it the fixed mpp world setup — so the ceilings
// below carry ~2× headroom. A regression that reintroduces per-row or
// per-batch heap traffic (thousands of allocs) fails loudly. Run in CI
// as the alloc-ceiling smoke step.
func TestAllocCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc ceilings are a bench-mode gate")
	}
	g := benchGraph(benchEntities, 1)
	tp := pat("?s", "http://x/age", "?a")
	e := benchFilterExpr()
	reg := udf.NewRegistry()
	prof := udf.NewProfiler()
	res := expr.NewCachedResolver(expr.DictResolver{Dict: g.Dict})
	ain := NewArena()
	var in, l, rt *Batch
	if _, err := mpp.Run(topo(1), mpp.DefaultNet(), 1, func(r *mpp.Rank) error {
		var err error
		if in, err = ScanBatch(r, g.Shard(0), g.Dict, tp, ain); err != nil {
			return err
		}
		if l, err = ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/knows", "?t"), ain); err != nil {
			return err
		}
		rt, err = ScanBatch(r, g.Shard(0), g.Dict, pat("?t", "http://x/age", "?v"), ain)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		ceiling float64
		run     func(r *mpp.Rank, a *Arena) error
	}{
		{"scan", 60, func(r *mpp.Rank, a *Arena) error {
			_, err := ScanBatch(r, g.Shard(0), g.Dict, tp, a)
			return err
		}},
		{"filter", 80, func(r *mpp.Rank, a *Arena) error {
			_, _, err := FilterBatch(r, in, e, reg, prof, res, FilterOpts{}, a)
			return err
		}},
		{"join", 110, func(r *mpp.Rank, a *Arena) error {
			_, err := HashJoinBatch(r, l, rt, a)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena()
			warm := func() {
				if _, err := mpp.Run(topo(1), mpp.DefaultNet(), 1, func(r *mpp.Rank) error {
					return tc.run(r, a)
				}); err != nil {
					t.Fatal(err)
				}
			}
			warm() // populate slabs and resolver caches
			got := testing.AllocsPerRun(5, func() {
				a.Reset()
				warm()
			})
			if got > tc.ceiling {
				t.Fatalf("%s: %.0f allocs/op exceeds pinned ceiling %.0f", tc.name, got, tc.ceiling)
			}
		})
	}
}

// BenchmarkAggregateBatch measures the columnar pipeline's aggregation
// boundary: late materialization of the gathered batch plus the
// row-based Aggregate, with ID→value decoding memoised by the cached
// resolver (as in the engine).
func BenchmarkAggregateBatch(b *testing.B) {
	g := benchGraph(benchEntities, 1)
	a := NewArena()
	var in *Batch
	benchWorld(b, func(r *mpp.Rank) error {
		var err error
		in, err = ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/age", "?a"), a)
		return err
	})
	res := expr.NewCachedResolver(expr.DictResolver{Dict: g.Dict})
	aggs := []AggSpec{{Func: "count", Var: "s", As: "n"}, {Func: "min", Var: "a", As: "lo"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := in.Materialize()
		if _, err := Aggregate(tab, []string{"a"}, aggs, res); err != nil {
			b.Fatal(err)
		}
	}
}
