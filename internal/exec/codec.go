package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ids/internal/dict"
	"ids/internal/expr"
)

// Table serialization: a compact binary codec so solution tables can
// be stashed in the global cache (the paper's §8 plan of caching IDS-
// internal artifacts through OpenFAM instead of CGE's restrictive
// serialization). ID values are dictionary references, so an encoded
// table is only meaningful to an engine holding the same dictionary —
// result-cache keys must incorporate the graph identity.

const codecVersion = 1

// ErrCodec reports a malformed encoded table.
var ErrCodec = errors.New("exec: malformed encoded table")

// Encode serializes the table.
func (t *Table) Encode() []byte {
	var buf []byte
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.Vars)))
	for _, v := range t.Vars {
		buf = appendString(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Rows)))
	for _, row := range t.Rows {
		for _, v := range row {
			buf = append(buf, byte(v.Kind))
			switch v.Kind {
			case expr.KindID:
				buf = binary.AppendUvarint(buf, uint64(v.ID))
			case expr.KindFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Num))
			case expr.KindString:
				buf = appendString(buf, v.Str)
			case expr.KindBool:
				if v.Bool {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeTable deserializes a table produced by Encode.
func DecodeTable(data []byte) (*Table, error) {
	d := &decoder{buf: data}
	ver, err := d.byte()
	if err != nil || ver != codecVersion {
		return nil, fmt.Errorf("%w: bad version", ErrCodec)
	}
	nvars, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nvars > 1<<16 {
		return nil, fmt.Errorf("%w: implausible header", ErrCodec)
	}
	t := &Table{Vars: make([]string, nvars)}
	for i := range t.Vars {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		t.Vars[i] = s
	}
	nrows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	t.Rows = make([][]expr.Value, 0, min(int(nrows), 1<<20))
	for r := uint64(0); r < nrows; r++ {
		row := make([]expr.Value, nvars)
		for c := range row {
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			v := expr.Value{Kind: expr.Kind(kind)}
			switch v.Kind {
			case expr.KindNull:
			case expr.KindID:
				u, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				v.ID = dict.ID(u)
			case expr.KindFloat:
				u, err := d.u64()
				if err != nil {
					return nil, err
				}
				v.Num = math.Float64frombits(u)
			case expr.KindString:
				s, err := d.str()
				if err != nil {
					return nil, err
				}
				v.Str = s
			case expr.KindBool:
				b, err := d.byte()
				if err != nil {
					return nil, err
				}
				v.Bool = b == 1
			default:
				return nil, fmt.Errorf("%w: unknown kind %d", ErrCodec, kind)
			}
			row[c] = v
		}
		t.Rows = append(t.Rows, row)
	}
	if len(d.buf[d.off:]) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCodec)
	}
	return t, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCodec)
	}
	d.off += n
	return u, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	u := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return u, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.buf) {
		return "", fmt.Errorf("%w: truncated string", ErrCodec)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
