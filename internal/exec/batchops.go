package exec

import (
	"log/slog"
	"strings"

	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
	"ids/internal/sparql"
	"ids/internal/triple"
	"ids/internal/udf"
)

// Columnar physical operators. Each one mirrors its row-engine
// counterpart exactly — same virtual-cost charging, same collective
// sequence (so the modeled communication accounting is identical),
// same SPARQL semantics — but flows dict.ID column vectors through an
// arena instead of boxed per-row value slices.

// ScanBatch matches a triple pattern against the rank's shard and
// returns the local bindings as ID column vectors. Repeated variables
// within the pattern are enforced as equality constraints.
func ScanBatch(r *mpp.Rank, shard *triple.Store, d *dict.Dict, pat sparql.TriplePattern, a *Arena) (*Batch, error) {
	resolve := func(tv sparql.TermOrVar) (dict.ID, bool) {
		if tv.IsVar {
			return dict.None, true
		}
		id, ok := d.Lookup(tv.Term)
		return id, ok
	}
	sid, sOK := resolve(pat.S)
	pid, pOK := resolve(pat.P)
	oid, oOK := resolve(pat.O)

	var vars []string
	addVar := func(name string) int {
		for i, v := range vars {
			if v == name {
				return i
			}
		}
		vars = append(vars, name)
		return len(vars) - 1
	}
	si, pi, oi := -1, -1, -1
	if pat.S.IsVar {
		si = addVar(pat.S.Var)
	}
	if pat.P.IsVar {
		pi = addVar(pat.P.Var)
	}
	if pat.O.IsVar {
		oi = addVar(pat.O.Var)
	}
	out := NewBatch(vars...)
	if !sOK || !pOK || !oOK {
		// A concrete term absent from the dictionary matches nothing.
		return out, nil
	}

	tp := triple.Pattern{S: sid, P: pid, O: oid}
	capacity := shard.Count(tp)
	for c := range out.Cols {
		out.Cols[c] = a.AllocIDs(capacity)
	}
	rows, matched := 0, 0
	shard.Match(tp, func(t triple.Triple) bool {
		matched++
		var vals [3]dict.ID
		var set [3]bool
		ok := true
		bind := func(ci int, id dict.ID) {
			if set[ci] {
				if vals[ci] != id {
					ok = false
				}
				return
			}
			set[ci] = true
			vals[ci] = id
		}
		if si >= 0 {
			bind(si, t.S)
		}
		if ok && pi >= 0 {
			bind(pi, t.P)
		}
		if ok && oi >= 0 {
			bind(oi, t.O)
		}
		if ok {
			for c := range out.Cols {
				out.Cols[c][rows] = vals[c]
			}
			rows++
		}
		return true
	})
	for c := range out.Cols {
		out.Cols[c] = out.Cols[c][:rows]
	}
	out.NRows = rows
	r.Charge(float64(matched) * scanCostPerTriple)
	return out, nil
}

// sharedVarsBatch returns the variables common to both headers.
func sharedVarsBatch(a, b *Batch) []string {
	var out []string
	for _, v := range a.Vars {
		if b.Col(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// partitionBatch routes each row to the rank owning its join key and
// returns the p send chunks (arena-backed, counting-sort layout).
func partitionBatch(a *Arena, b *Batch, keyIdx []int, p int) []batchChunk {
	n := b.NRows
	hv := a.AllocIDs(n) // hash scratch: dict.ID is uint64
	// Counting-sort counters live in one reused int scratch: counts,
	// offsets (p+1) and cursors back to back.
	s := a.intScratch(3*p + 1)
	counts, offs, cur := s[0:p], s[p:2*p+1], s[2*p+1:3*p+1]
	for d := range counts {
		counts[d] = 0
	}
	for i := 0; i < n; i++ {
		h := hashBatchRow(b.Cols, keyIdx, i)
		hv[i] = dict.ID(h)
		counts[h%uint64(p)]++
	}
	offs[0] = 0
	for d := 0; d < p; d++ {
		offs[d+1] = offs[d] + counts[d]
	}
	sel := a.selSlice(n)[0:n]
	copy(cur, offs[:p])
	for i := 0; i < n; i++ {
		d := uint64(hv[i]) % uint64(p)
		sel[cur[d]] = int32(i)
		cur[d]++
	}
	send := a.chunkScratch(p)
	for d := 0; d < p; d++ {
		send[d] = selChunk(a, b, sel[offs[d]:offs[d+1]])
	}
	return send
}

// buildBatch indexes the build side's rows into the arena's reusable
// hash-build structure.
func buildBatch(a *Arena, b *Batch, keyIdx []int) *hashBuild {
	hb := a.buildFor(b.NRows)
	for i := 0; i < b.NRows; i++ {
		h := hashBatchRow(b.Cols, keyIdx, i)
		if head, ok := hb.heads[h]; ok {
			hb.next[i] = head
		} else {
			hb.next[i] = -1
		}
		hb.heads[h] = int32(i)
	}
	return hb
}

// joinOutput gathers the probe/build row pairs into the join's output
// batch. rsel entries of -1 null-extend (LeftJoin).
func joinOutput(a *Arena, outVars []string, lb *Batch, lsel []int32, rb *Batch, rAppend []int, rsel []int32) *Batch {
	nout := len(lsel)
	out := &Batch{Vars: outVars, Cols: make([][]dict.ID, len(outVars)), NRows: nout}
	for j := range lb.Vars {
		dst := a.AllocIDs(nout)
		col := lb.Cols[j]
		for k, li := range lsel {
			dst[k] = col[li]
		}
		out.Cols[j] = dst
	}
	for j, rc := range rAppend {
		dst := a.AllocIDs(nout)
		col := rb.Cols[rc]
		for k, ri := range rsel {
			if ri >= 0 {
				dst[k] = col[ri]
			} else {
				dst[k] = dict.None
			}
		}
		out.Cols[len(lb.Vars)+j] = dst
	}
	return out
}

// joinHeader computes the output header and the build-side columns to
// append (those not shared with the probe side).
func joinHeader(left, right *Batch) (outVars []string, rAppend []int) {
	outVars = append([]string{}, left.Vars...)
	for i, v := range right.Vars {
		if left.Col(v) < 0 {
			outVars = append(outVars, v)
			rAppend = append(rAppend, i)
		}
	}
	return outVars, rAppend
}

// crossJoinBatch replicates the right side and produces the cross
// product (leftJoin additionally null-extends when the right side is
// globally empty).
func crossJoinBatch(r *mpp.Rank, left, right *Batch, a *Arena, leftJoin bool) (*Batch, error) {
	outVars, rAppend := joinHeader(left, right)
	allRight, err := mpp.AllGatherSized(r, sliceChunk(a, right, 0, right.NRows), chunkRows)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, part := range allRight {
		total += part.n
	}
	if total == 0 && leftJoin {
		// Null-extend every left row.
		out := &Batch{Vars: outVars, Cols: make([][]dict.ID, len(outVars)), NRows: left.NRows}
		copy(out.Cols, left.Cols)
		for j := range rAppend {
			dst := a.AllocIDs(left.NRows)
			for k := range dst {
				dst[k] = dict.None
			}
			out.Cols[len(left.Vars)+j] = dst
		}
		r.Charge(float64(left.NRows) * joinCostPerRow)
		return out, nil
	}
	nout := left.NRows * total
	out := &Batch{Vars: outVars, Cols: make([][]dict.ID, len(outVars)), NRows: nout}
	for j := range outVars {
		out.Cols[j] = a.AllocIDs(nout)
	}
	k := 0
	for lr := 0; lr < left.NRows; lr++ {
		for _, part := range allRight {
			for i := 0; i < part.n; i++ {
				for j := range left.Vars {
					out.Cols[j][k] = left.Cols[j][lr]
				}
				for j, rc := range rAppend {
					out.Cols[len(left.Vars)+j][k] = part.cols[rc][i]
				}
				k++
			}
		}
	}
	r.Charge(float64(nout) * joinCostPerRow)
	return out, nil
}

// HashJoinBatch is the columnar distributed hash join: both sides are
// hash-repartitioned across ranks by join key (AllToAll exchanges of
// column chunks), the right side builds, the left side probes, and the
// matching row pairs gather column-wise into the output.
func HashJoinBatch(r *mpp.Rank, left, right *Batch, a *Arena) (*Batch, error) {
	return hashJoinBatch(r, left, right, a, false)
}

// LeftJoinBatch joins right into left with OPTIONAL semantics: left
// rows without a match survive with dict.None in the right columns.
func LeftJoinBatch(r *mpp.Rank, left, right *Batch, a *Arena) (*Batch, error) {
	return hashJoinBatch(r, left, right, a, true)
}

func hashJoinBatch(r *mpp.Rank, left, right *Batch, a *Arena, leftJoin bool) (*Batch, error) {
	shared := sharedVarsBatch(left, right)
	if len(shared) == 0 {
		return crossJoinBatch(r, left, right, a, leftJoin)
	}
	outVars, rAppend := joinHeader(left, right)
	p := r.Size()
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = left.Col(v)
		rIdx[i] = right.Col(v)
	}
	lRecv, err := mpp.AllToAllSized(r, partitionBatch(a, left, lIdx, p), chunkRows)
	if err != nil {
		return nil, err
	}
	rRecv, err := mpp.AllToAllSized(r, partitionBatch(a, right, rIdx, p), chunkRows)
	if err != nil {
		return nil, err
	}
	lb := concatChunks(a, left.Vars, lRecv)
	rb := concatChunks(a, right.Vars, rRecv)

	hb := buildBatch(a, rb, rIdx)
	lsel := a.selSlice(lb.NRows)
	rsel := a.selSliceB(lb.NRows)
	probes := 0
	for i := 0; i < lb.NRows; i++ {
		probes++
		matched := false
		if head, ok := hb.heads[hashBatchRow(lb.Cols, lIdx, i)]; ok {
			for j := head; j >= 0; j = hb.next[j] {
				if batchKeyEqual(lb.Cols, lIdx, i, rb.Cols, rIdx, int(j)) {
					matched = true
					lsel = append(lsel, int32(i))
					rsel = append(rsel, int32(j))
				}
			}
		}
		if !matched && leftJoin {
			lsel = append(lsel, int32(i))
			rsel = append(rsel, -1)
		}
	}
	out := joinOutput(a, outVars, lb, lsel, rb, rAppend, rsel)
	a.saveSel(lsel)
	a.saveSelB(rsel)
	r.Charge(float64(probes+out.NRows) * joinCostPerRow)
	return out, nil
}

// GatherBatch concentrates all rows of the distributed batch onto
// every rank.
func GatherBatch(r *mpp.Rank, b *Batch, a *Arena) (*Batch, error) {
	parts, err := mpp.AllGatherSized(r, sliceChunk(a, b, 0, b.NRows), chunkRows)
	if err != nil {
		return nil, err
	}
	return concatChunks(a, b.Vars, parts), nil
}

// DistinctLocalBatch removes duplicate rows within this rank's
// partition, preserving first-seen order.
func DistinctLocalBatch(b *Batch, a *Arena) *Batch {
	allIdx := make([]int, len(b.Vars))
	for i := range allIdx {
		allIdx[i] = i
	}
	hb := a.buildFor(b.NRows)
	keep := a.selSlice(b.NRows)
	for i := 0; i < b.NRows; i++ {
		h := hashBatchRow(b.Cols, allIdx, i)
		dup := false
		head, ok := hb.heads[h]
		if ok {
			for j := head; j >= 0; j = hb.next[j] {
				if batchKeyEqual(b.Cols, allIdx, i, b.Cols, allIdx, int(j)) {
					dup = true
					break
				}
			}
		}
		if dup {
			continue
		}
		if ok {
			hb.next[i] = head
		} else {
			hb.next[i] = -1
		}
		hb.heads[h] = int32(i)
		keep = append(keep, int32(i))
	}
	out := gatherBatch(a, b, keep)
	a.saveSel(keep)
	return out
}

// DistinctGlobalBatch removes duplicates across ranks: rows hash-
// partition so duplicates meet on one rank, then deduplicate locally.
func DistinctGlobalBatch(r *mpp.Rank, b *Batch, a *Arena) (*Batch, error) {
	allIdx := make([]int, len(b.Vars))
	for i := range allIdx {
		allIdx[i] = i
	}
	recv, err := mpp.AllToAllSized(r, partitionBatch(a, b, allIdx, r.Size()), chunkRows)
	if err != nil {
		return nil, err
	}
	return DistinctLocalBatch(concatChunks(a, b.Vars, recv), a), nil
}

// ConcatBatches concatenates same-header batches (UNION).
func ConcatBatches(a *Arena, vars []string, parts []*Batch) *Batch {
	chunks := make([]batchChunk, len(parts))
	for i, p := range parts {
		chunks[i] = sliceChunk(a, p, 0, p.NRows)
	}
	return concatChunks(a, vars, chunks)
}

// batchEnv adapts one batch row to expr.Env with lazy ID lookup; the
// column map is built once per operator, never per row.
type batchEnv struct {
	cols map[string]int
	b    *Batch
	row  int
}

func (e *batchEnv) Lookup(name string) (expr.Value, bool) {
	i, ok := e.cols[name]
	if !ok {
		return expr.Null, false
	}
	id := e.b.Cols[i][e.row]
	if id == dict.None {
		return expr.Null, true
	}
	return expr.IDVal(id), true
}

// FilterBatch evaluates e against every row of the batch, keeping rows
// whose effective boolean value is true — semantics, profiling,
// virtual-cost charging and re-balancing all identical to the row
// engine's Filter.
func FilterBatch(r *mpp.Rank, b *Batch, e expr.Expr, funcs expr.FuncResolver,
	prof *udf.Profiler, res expr.Resolver, opts FilterOpts, a *Arena) (*Batch, FilterStats, error) {

	if opts.SpeedFactor <= 0 {
		opts.SpeedFactor = 1
	}
	chain := expr.Conjuncts(e)
	if opts.Reorder {
		chain = expr.ReorderChain(chain, prof)
	}
	if opts.Logger != nil && opts.Logger.Enabled(opts.logCtx(), slog.LevelDebug) && len(chain) > 1 {
		order := make([]string, len(chain))
		for i, c := range chain {
			order[i] = c.String()
		}
		opts.Logger.DebugContext(opts.logCtx(), "filter conjunct order",
			"rank", r.ID(), "reordered", opts.Reorder, "order", strings.Join(order, " AND "))
	}

	stats := FilterStats{RowsBefore: b.Len()}
	if opts.Rebalance != RebalanceNone {
		secPerSol := 0.0
		for _, c := range chain {
			secPerSol += expr.EstimateConjunct(c, prof).Cost
		}
		rate := 1e9
		if secPerSol > 0 {
			rate = 1 / secPerSol
		}
		vt0 := r.Now()
		var err error
		b, stats.Rebalance, err = RebalanceBatchCounted(r, b, opts.Rebalance, rate, a)
		if err != nil {
			return nil, FilterStats{}, err
		}
		stats.RebalanceSeconds = r.Now() - vt0
		if opts.Logger != nil && (stats.Rebalance.Sent > 0 || stats.Rebalance.Received > 0) {
			opts.Logger.DebugContext(opts.logCtx(), "filter rebalanced solutions",
				"rank", r.ID(), "rows_before", stats.RowsBefore,
				"sent", stats.Rebalance.Sent, "received", stats.Rebalance.Received,
				"vt_seconds", stats.RebalanceSeconds)
		}
	}

	stats.Order = make([]string, len(chain))
	for i, c := range chain {
		stats.Order[i] = c.String()
	}

	cols := make(map[string]int, len(b.Vars))
	for i, v := range b.Vars {
		cols[v] = i
	}
	rec := &callRecorder{inner: funcs}
	env := &batchEnv{cols: cols, b: b}
	ctx := &expr.Ctx{Funcs: rec, Terms: res, Env: env}
	sel := a.selSlice(b.NRows)
	for i := 0; i < b.NRows; i++ {
		stats.Evaluated++
		env.row = i
		keep := true
		for _, conjunct := range chain {
			rec.calls = rec.calls[:0]
			ok, err := expr.EvalBool(conjunct, ctx)
			rejected := err != nil || !ok
			for _, call := range rec.calls {
				cost := call.cost * opts.SpeedFactor
				prof.Record(call.name, cost, rejected)
				r.Charge(cost)
				stats.UDFCost += cost
			}
			if err != nil {
				stats.Errors++
				keep = false
				break
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, int32(i))
			stats.Passed++
		}
	}
	out := gatherBatch(a, b, sel)
	a.saveSel(sel)
	return out, stats, nil
}

// RebalanceBatchCounted redistributes the distributed batch so each
// rank's row count matches the selected policy's target, mirroring
// RebalanceCounted: identical collective sequence, identical targets,
// tail rows shipped zero-copy as column sub-slices.
func RebalanceBatchCounted(r *mpp.Rank, b *Batch, mode RebalanceMode, solPerSec float64, a *Arena) (*Batch, RebalanceInfo, error) {
	var info RebalanceInfo
	if mode == RebalanceNone {
		return b, info, nil
	}
	p := r.Size()
	counts, err := mpp.AllGather(r, b.Len())
	if err != nil {
		return nil, info, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	var targets []int
	if mode == RebalanceCost {
		rates, err := mpp.AllGather(r, solPerSec)
		if err != nil {
			return nil, info, err
		}
		minR, maxR := rates[0], rates[0]
		for _, x := range rates {
			if x < minR {
				minR = x
			}
			if x > maxR {
				maxR = x
			}
		}
		if minR > 0 && maxR/minR <= speedSimilarityBand {
			targets = CountTargets(total, p)
		} else {
			targets = CostTargets(total, rates)
		}
	} else {
		targets = CountTargets(total, p)
	}
	myRow := SendRow(append([]int{}, counts...), targets, r.ID())
	for _, n := range myRow {
		info.Sent += n
	}

	// Ship tail rows as zero-copy column sub-slices.
	send := make([]batchChunk, p)
	cursor := b.NRows
	for dst := 0; dst < p; dst++ {
		n := myRow[dst]
		if n == 0 {
			continue
		}
		send[dst] = sliceChunk(a, b, cursor-n, cursor)
		cursor -= n
	}
	recv, err := mpp.AllToAllSized(r, send, chunkRows)
	if err != nil {
		return nil, info, err
	}
	chunks := make([]batchChunk, 0, p+1)
	chunks = append(chunks, sliceChunk(a, b, 0, cursor))
	for src, part := range recv {
		if src == r.ID() {
			continue
		}
		info.Received += part.n
		chunks = append(chunks, part)
	}
	return concatChunks(a, b.Vars, chunks), info, nil
}
