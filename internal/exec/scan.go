package exec

import (
	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
	"ids/internal/sparql"
	"ids/internal/triple"
)

// scanCostPerTriple is the modeled in-memory scan cost per matched
// triple (tens of nanoseconds, CGE-like); charged to the rank clock so
// scans show up in the phase breakdown with realistic scaling.
const scanCostPerTriple = 5e-8

// Scan matches a triple pattern against the rank's shard and returns
// the local bindings table. Repeated variables within the pattern
// (e.g. ?x ?p ?x) are enforced as equality constraints.
func Scan(r *mpp.Rank, shard *triple.Store, d *dict.Dict, pat sparql.TriplePattern) (*Table, error) {
	resolve := func(tv sparql.TermOrVar) (dict.ID, bool) {
		if tv.IsVar {
			return dict.None, true
		}
		id, ok := d.Lookup(tv.Term)
		return id, ok
	}
	sid, sOK := resolve(pat.S)
	pid, pOK := resolve(pat.P)
	oid, oOK := resolve(pat.O)

	var vars []string
	addVar := func(name string) {
		for _, v := range vars {
			if v == name {
				return
			}
		}
		vars = append(vars, name)
	}
	if pat.S.IsVar {
		addVar(pat.S.Var)
	}
	if pat.P.IsVar {
		addVar(pat.P.Var)
	}
	if pat.O.IsVar {
		addVar(pat.O.Var)
	}
	out := NewTable(vars...)
	if !sOK || !pOK || !oOK {
		// A concrete term absent from the dictionary matches nothing.
		return out, nil
	}

	cols := out.colIndex()
	matched := 0
	vals := make([]dict.ID, len(vars))
	set := make([]bool, len(vars))
	shard.Match(triple.Pattern{S: sid, P: pid, O: oid}, func(t triple.Triple) bool {
		matched++
		for i := range set {
			set[i] = false
		}
		ok := true
		bind := func(name string, id dict.ID) {
			i := cols[name]
			if set[i] {
				if vals[i] != id {
					ok = false
				}
				return
			}
			set[i] = true
			vals[i] = id
		}
		if pat.S.IsVar {
			bind(pat.S.Var, t.S)
		}
		if ok && pat.P.IsVar {
			bind(pat.P.Var, t.P)
		}
		if ok && pat.O.IsVar {
			bind(pat.O.Var, t.O)
		}
		if ok {
			row := make([]expr.Value, len(vars))
			for i, id := range vals {
				row[i] = expr.IDVal(id)
			}
			out.Rows = append(out.Rows, row)
		}
		return true
	})
	r.Charge(float64(matched) * scanCostPerTriple)
	return out, nil
}
