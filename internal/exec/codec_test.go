package exec

import (
	"errors"
	"testing"
	"testing/quick"

	"ids/internal/dict"
	"ids/internal/expr"
)

func TestCodecRoundTrip(t *testing.T) {
	tab := NewTable("a", "b", "c", "d", "e")
	tab.Append([]expr.Value{
		expr.IDVal(42), expr.Float(3.14), expr.String("hello"), expr.Bool(true), expr.Null,
	})
	tab.Append([]expr.Value{
		expr.IDVal(0), expr.Float(-1e300), expr.String(""), expr.Bool(false), expr.Null,
	})
	data := tab.Encode()
	back, err := DecodeTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vars) != 5 || back.Vars[2] != "c" {
		t.Fatalf("vars = %v", back.Vars)
	}
	if len(back.Rows) != 2 {
		t.Fatalf("rows = %d", len(back.Rows))
	}
	for r := range tab.Rows {
		for c := range tab.Rows[r] {
			if tab.Rows[r][c] != back.Rows[r][c] {
				t.Fatalf("cell %d,%d: %v != %v", r, c, tab.Rows[r][c], back.Rows[r][c])
			}
		}
	}
}

func TestCodecEmptyTable(t *testing.T) {
	tab := NewTable()
	back, err := DecodeTable(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vars) != 0 || len(back.Rows) != 0 {
		t.Fatalf("back = %+v", back)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},             // bad version
		{1, 0xff},        // truncated varint
		{1, 1},           // missing var name
		{1, 0, 1, 1, 77}, // bad value kind
	}
	for i, c := range cases {
		if _, err := DecodeTable(c); !errors.Is(err, ErrCodec) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Trailing bytes rejected.
	good := NewTable("x")
	good.Append([]expr.Value{expr.Float(1)})
	data := append(good.Encode(), 0xAB)
	if _, err := DecodeTable(data); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing bytes accepted: %v", err)
	}
}

// Property: arbitrary tables survive the round trip.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ids []uint32, nums []float64, strs []string, bools []bool) bool {
		tab := NewTable("id", "num", "str", "bool")
		n := len(ids)
		for _, x := range []int{len(nums), len(strs), len(bools)} {
			if x < n {
				n = x
			}
		}
		if n > 50 {
			n = 50
		}
		for i := 0; i < n; i++ {
			tab.Append([]expr.Value{
				expr.IDVal(dict.ID(ids[i])),
				expr.Float(nums[i]),
				expr.String(strs[i]),
				expr.Bool(bools[i]),
			})
		}
		back, err := DecodeTable(tab.Encode())
		if err != nil || len(back.Rows) != n {
			return false
		}
		for r := range tab.Rows {
			for c := range tab.Rows[r] {
				a, b := tab.Rows[r][c], back.Rows[r][c]
				// NaN != NaN; compare bit-level via encoded equality.
				if a.Kind != b.Kind {
					return false
				}
				if a.Kind == expr.KindFloat {
					if a.Num != b.Num && !(a.Num != a.Num && b.Num != b.Num) {
						return false
					}
				} else if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeTable(b *testing.B) {
	tab := NewTable("a", "b")
	for i := 0; i < 1000; i++ {
		tab.Append([]expr.Value{expr.IDVal(dict.ID(i)), expr.Float(float64(i))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Encode()
	}
}
