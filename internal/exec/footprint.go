package exec

import (
	"unsafe"

	"ids/internal/expr"
)

// Operator-local memory accounting for the query cost observatory.
//
// Go has no per-goroutine allocation counters, so operators account the
// memory they *materialize* — the tables and build structures that
// dominate a query's footprint — and the engine cross-checks the sum
// against the process-wide runtime/metrics delta bracketing the query.
// The estimates here are deliberately conservative (they skip map
// internals, string bodies, and transient per-row garbage), preserving
// the invariant 0 < sum(op footprints) <= physical delta documented in
// internal/obs/resources.go and DESIGN.md §10.

// valueSize is the in-memory size of one expr.Value cell.
const valueSize = int64(unsafe.Sizeof(expr.Value{}))

// sliceHeaderSize is the size of a slice header (one per row, plus one
// for Rows itself).
const sliceHeaderSize = int64(unsafe.Sizeof([]expr.Value{}))

// hashBuildBytesPerRow approximates the per-row overhead of a join's
// hash build side: a map bucket slot plus the key string header. An
// under-estimate by design (map load factor, key bytes, and collision
// chains are skipped).
const hashBuildBytesPerRow = 40

// Footprint returns the accounted heap footprint of a freshly
// materialized table: Rows' backing array plus one cell array per row.
// Use this for operators that build new rows (scan, join, optional,
// aggregate).
func (t *Table) Footprint() (bytes, mallocs int64) {
	if t == nil {
		return 0, 0
	}
	n := int64(len(t.Rows))
	w := int64(len(t.Vars))
	bytes = sliceHeaderSize * n // Rows backing array
	bytes += n * w * valueSize  // one cell array per row
	mallocs = n + 1
	return bytes, mallocs
}

// FootprintShallow returns the accounted footprint of a table that
// reuses existing row slices (filter, union, gather, distinct,
// rebalance): only the new Rows backing array of row headers counts.
func (t *Table) FootprintShallow() (bytes, mallocs int64) {
	if t == nil {
		return 0, 0
	}
	return sliceHeaderSize * int64(len(t.Rows)), 1
}

// HashBuildFootprint returns the accounted footprint of a hash join's
// build structure over n rows.
func HashBuildFootprint(n int) (bytes, mallocs int64) {
	if n <= 0 {
		return 0, 0
	}
	return int64(n) * hashBuildBytesPerRow, int64(n)
}

// MaterializeFootprint returns the accounted footprint of Batch.
// Materialize's output: the table struct itself, plus (for non-empty
// batches) one shared cell backing array and one row-header array.
// These are always genuinely fresh heap objects — result rows escape
// to the caller and can never live in an arena — which is what keeps
// the op-accounted ledger strictly positive on the columnar path.
func (b *Batch) MaterializeFootprint() (bytes, mallocs int64) {
	bytes = 2 * sliceHeaderSize // Table struct: Vars + Rows headers
	mallocs = 1
	if b.NRows > 0 {
		n, w := int64(b.NRows), int64(len(b.Vars))
		bytes += n*w*valueSize + n*sliceHeaderSize
		mallocs += 2 // cells array + row-header array
	}
	return bytes, mallocs
}
