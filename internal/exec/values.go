package exec

import (
	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
	"ids/internal/sparql"
)

// VALUES access-path operators: an inline data block becomes a small
// solution table, partitioned round-robin across ranks so the global
// table is exactly the block, then hash-joins into the running stream
// like any other access path.

// ResolveValues resolves a VALUES data block against the dictionary:
// UNDEF cells become dict.None, concrete terms their dictionary ID.
// Rows containing a term absent from the dictionary are dropped — an
// unknown term can never match a graph binding, and keeping it would
// force materialized strings into the ID-typed columnar stream. This
// is a documented subset restriction applied identically by both
// engines (the row oracle and the columnar path see the same rows).
func ResolveValues(vp sparql.ValuesPattern, d *dict.Dict) [][]dict.ID {
	rows := make([][]dict.ID, 0, len(vp.Rows))
	for _, src := range vp.Rows {
		row := make([]dict.ID, len(src))
		ok := true
		for i, c := range src {
			if c.Undef {
				row[i] = dict.None
				continue
			}
			id, found := d.Lookup(c.Term)
			if !found {
				ok = false
				break
			}
			row[i] = id
		}
		if ok {
			rows = append(rows, row)
		}
	}
	return rows
}

// ValuesTable builds this rank's partition of a resolved VALUES block
// for the row engine: row i of the block goes to rank i % size.
// dict.None cells (UNDEF) bind null.
func ValuesTable(r *mpp.Rank, vars []string, rows [][]dict.ID) *Table {
	t := NewTable(vars...)
	rank, size := r.ID(), r.Size()
	for i, row := range rows {
		if i%size != rank {
			continue
		}
		vr := make([]expr.Value, len(row))
		for j, id := range row {
			if id == dict.None {
				vr[j] = expr.Null
			} else {
				vr[j] = expr.IDVal(id)
			}
		}
		t.Rows = append(t.Rows, vr)
	}
	r.Charge(float64(t.Len()) * scanCostPerTriple)
	return t
}

// ValuesBatch is ValuesTable's columnar twin: arena-backed ID columns
// holding this rank's round-robin partition of the block.
func ValuesBatch(r *mpp.Rank, a *Arena, vars []string, rows [][]dict.ID) *Batch {
	rank, size := r.ID(), r.Size()
	n := 0
	for i := range rows {
		if i%size == rank {
			n++
		}
	}
	cols := make([][]dict.ID, len(vars))
	for j := range cols {
		cols[j] = a.AllocIDs(n)
	}
	k := 0
	for i, row := range rows {
		if i%size != rank {
			continue
		}
		for j, id := range row {
			cols[j][k] = id
		}
		k++
	}
	r.Charge(float64(n) * scanCostPerTriple)
	return &Batch{Vars: append([]string{}, vars...), Cols: cols, NRows: n}
}
