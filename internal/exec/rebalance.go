package exec

import (
	"sort"

	"ids/internal/expr"
	"ids/internal/mpp"
)

// This file implements solution re-balancing (paper §2.4.2). IDS
// re-balances intermediate solutions across ranks between operators.
// Plain count-based balancing equalizes row counts; cost-aware
// balancing uses the per-rank UDF throughput estimates so slower ranks
// receive proportionally fewer solutions. When all ranks report
// similar throughput (within ~20% of the slowest), the cost-aware mode
// falls back to count-based balancing, exactly as the paper specifies.

// RebalanceMode selects the balancing policy.
type RebalanceMode int

// Balancing policies.
const (
	RebalanceNone RebalanceMode = iota
	RebalanceCount
	RebalanceCost
)

func (m RebalanceMode) String() string {
	switch m {
	case RebalanceCount:
		return "count"
	case RebalanceCost:
		return "cost"
	default:
		return "none"
	}
}

// speedSimilarityBand is the throughput ratio under which cost-aware
// balancing degenerates to count-based (the paper's ~20%).
const speedSimilarityBand = 1.2

// CountTargets assigns total rows as evenly as possible over p ranks.
func CountTargets(total, p int) []int {
	out := make([]int, p)
	base := total / p
	rem := total % p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// CostTargets assigns total rows proportionally to each rank's
// throughput (solutions/second). Remainders go to the fastest ranks.
// This realizes the paper's chunk_size × rank_ratio assignment: each
// rank's share is total × rate_i / Σrate.
func CostTargets(total int, rates []float64) []int {
	p := len(rates)
	sum := 0.0
	for _, r := range rates {
		if r > 0 {
			sum += r
		}
	}
	out := make([]int, p)
	if sum <= 0 {
		return CountTargets(total, p)
	}
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, p)
	assigned := 0
	for i, r := range rates {
		if r < 0 {
			r = 0
		}
		share := float64(total) * r / sum
		out[i] = int(share)
		assigned += out[i]
		fracs[i] = frac{i, share - float64(out[i])}
	}
	// Distribute the remainder by largest fractional part, breaking
	// ties by higher rate then lower rank id (deterministic on every
	// rank; sorted once so the distribution is O(P log P)).
	sort.SliceStable(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return rates[fracs[a].i] > rates[fracs[b].i]
	})
	for j := 0; assigned < total && j < len(fracs); j++ {
		out[fracs[j].i]++
		assigned++
	}
	// A pathological rounding deficit larger than P is impossible
	// (each share loses < 1), but guard for safety.
	for i := 0; assigned < total; i = (i + 1) % p {
		out[i]++
		assigned++
	}
	return out
}

// TransferPlan computes a deterministic redistribution matrix:
// plan[from][to] rows move from surplus ranks to deficit ranks, both
// walked in rank order. All ranks compute the identical plan from the
// same inputs. O(P^2) memory — use SendRow inside rank bodies, where
// P copies of the matrix would not fit.
func TransferPlan(current, target []int) [][]int {
	p := len(current)
	plan := make([][]int, p)
	for i := range plan {
		plan[i] = make([]int, p)
	}
	walkTransfers(current, target, func(src, dst, n int) {
		plan[src][dst] += n
	})
	return plan
}

// SendRow computes only rank me's row of the transfer plan — O(P)
// memory, so every rank can evaluate it locally.
func SendRow(current, target []int, me int) []int {
	out := make([]int, len(current))
	walkTransfers(current, target, func(src, dst, n int) {
		if src == me {
			out[dst] += n
		}
	})
	return out
}

// walkTransfers runs the deterministic two-pointer surplus/deficit
// walk, invoking move for every transfer. It mutates current.
func walkTransfers(current, target []int, move func(src, dst, n int)) {
	p := len(current)
	src, dst := 0, 0
	surplus := func(i int) int { return current[i] - target[i] }
	for src < p && dst < p {
		for src < p && surplus(src) <= 0 {
			src++
		}
		for dst < p && surplus(dst) >= 0 {
			dst++
		}
		if src >= p || dst >= p {
			break
		}
		n := surplus(src)
		if need := -surplus(dst); need < n {
			n = need
		}
		move(src, dst, n)
		current[src] -= n
		current[dst] += n
	}
}

// EstimatedMakespan returns max_i(count_i / rate_i) — the completion
// time bound of independent per-rank UDF evaluation, used by the
// re-balancing ablation to reproduce the paper's worked example.
func EstimatedMakespan(counts []int, rates []float64) float64 {
	worst := 0.0
	for i, c := range counts {
		r := rates[i]
		if r <= 0 {
			continue
		}
		if t := float64(c) / r; t > worst {
			worst = t
		}
	}
	return worst
}

// RebalanceInfo reports what re-balancing did on one rank: how many
// rows it shipped out and pulled in (the paper's migrated chunks).
type RebalanceInfo struct {
	Sent     int
	Received int
}

// Rebalance redistributes the distributed table t so each rank's row
// count matches the selected policy's target. solPerSec is this rank's
// estimated UDF throughput (ignored for count-based balancing). The
// exchanged rows are charged to the network model by the AllToAll.
func Rebalance(r *mpp.Rank, t *Table, mode RebalanceMode, solPerSec float64) (*Table, error) {
	out, _, err := RebalanceCounted(r, t, mode, solPerSec)
	return out, err
}

// RebalanceCounted is Rebalance plus per-rank migration accounting for
// the tracer.
func RebalanceCounted(r *mpp.Rank, t *Table, mode RebalanceMode, solPerSec float64) (*Table, RebalanceInfo, error) {
	var info RebalanceInfo
	if mode == RebalanceNone {
		return t, info, nil
	}
	p := r.Size()
	counts, err := mpp.AllGather(r, t.Len())
	if err != nil {
		return nil, info, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	var targets []int
	if mode == RebalanceCost {
		rates, err := mpp.AllGather(r, solPerSec)
		if err != nil {
			return nil, info, err
		}
		minR, maxR := rates[0], rates[0]
		for _, x := range rates {
			if x < minR {
				minR = x
			}
			if x > maxR {
				maxR = x
			}
		}
		if minR > 0 && maxR/minR <= speedSimilarityBand {
			targets = CountTargets(total, p) // similar speeds: plain balancing
		} else {
			targets = CostTargets(total, rates)
		}
	} else {
		targets = CountTargets(total, p)
	}
	myRow := SendRow(append([]int{}, counts...), targets, r.ID())
	for _, n := range myRow {
		info.Sent += n
	}

	// Build send buffers from the tail of the local partition.
	send := make([][][]expr.Value, p)
	cursor := len(t.Rows)
	for dst := 0; dst < p; dst++ {
		n := myRow[dst]
		if n == 0 {
			send[dst] = nil
			continue
		}
		send[dst] = t.Rows[cursor-n : cursor]
		cursor -= n
	}
	kept := t.Rows[:cursor]
	recv, err := mpp.AllToAll(r, send)
	if err != nil {
		return nil, info, err
	}
	out := NewTable(t.Vars...)
	out.Rows = append(out.Rows, kept...)
	for src, part := range recv {
		if src == r.ID() {
			continue
		}
		info.Received += len(part)
		out.Rows = append(out.Rows, part...)
	}
	return out, info, nil
}
