package exec

import (
	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
)

// kNN access-path operators. The engine runs the vector-store search
// itself (every rank computes the identical deterministic hit list);
// these operators turn the hit IDs into solution tables and apply the
// semi-join membership filter, in both row and columnar form.

// knnCostPerVisit is the modeled cost of one distance evaluation
// during graph traversal (a dot product over a few dozen floats plus a
// heap push — an order above a triple scan).
const knnCostPerVisit = 5e-7

// ChargeKNN advances the rank clock by the modeled search cost for
// visited distance evaluations.
func ChargeKNN(r *mpp.Rank, visited int) {
	r.Charge(float64(visited) * knnCostPerVisit)
}

// KNNTable builds the row-engine access-path table: one column named
// varName holding this rank's partition of the hit IDs.
func KNNTable(varName string, ids []dict.ID) *Table {
	t := NewTable(varName)
	for _, id := range ids {
		t.Append([]expr.Value{expr.IDVal(id)})
	}
	return t
}

// KNNBatch is KNNTable's columnar twin: a single arena-backed ID
// column.
func KNNBatch(a *Arena, varName string, ids []dict.ID) *Batch {
	col := a.AllocIDs(len(ids))
	copy(col, ids)
	return &Batch{Vars: []string{varName}, Cols: [][]dict.ID{col}, NRows: len(ids)}
}

// SemiFilterTable keeps the rows whose col cell is an ID contained in
// keep (the global top-k set). Unbound or non-ID cells are dropped —
// they cannot be vector-store keys.
func SemiFilterTable(t *Table, col int, keep map[dict.ID]bool) *Table {
	out := &Table{Vars: t.Vars, Rows: t.Rows[:0:0]}
	for _, row := range t.Rows {
		if v := row[col]; v.Kind == expr.KindID && keep[v.ID] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// SemiFilterBatch is SemiFilterTable's columnar twin.
func SemiFilterBatch(a *Arena, b *Batch, col int, keep map[dict.ID]bool) *Batch {
	sel := a.selSlice(b.NRows)
	c := b.Cols[col]
	for i := 0; i < b.NRows; i++ {
		if id := c[i]; id != dict.None && keep[id] {
			sel = append(sel, int32(i))
		}
	}
	out := gatherBatch(a, b, sel)
	a.saveSel(sel)
	return out
}
