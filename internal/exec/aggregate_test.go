package exec

import (
	"testing"
	"testing/quick"

	"ids/internal/expr"
)

func aggTable(groups []uint8, vals []int16) *Table {
	t := NewTable("g", "v")
	n := len(groups)
	if len(vals) < n {
		n = len(vals)
	}
	for i := 0; i < n; i++ {
		t.Append([]expr.Value{
			expr.String(string(rune('a' + groups[i]%5))),
			expr.Float(float64(vals[i])),
		})
	}
	return t
}

func TestAggregateBasics(t *testing.T) {
	tab := NewTable("g", "v")
	tab.Append([]expr.Value{expr.String("a"), expr.Float(1)})
	tab.Append([]expr.Value{expr.String("a"), expr.Float(3)})
	tab.Append([]expr.Value{expr.String("b"), expr.Float(5)})
	out, err := Aggregate(tab, []string{"g"}, []AggSpec{
		{Func: "count", As: "n"},
		{Func: "sum", Var: "v", As: "s"},
		{Func: "avg", Var: "v", As: "m"},
		{Func: "min", Var: "v", As: "lo"},
		{Func: "max", Var: "v", As: "hi"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("groups = %d", len(out.Rows))
	}
	// First-appearance order: group "a" first.
	a := out.Rows[0]
	if a[0].Str != "a" || a[1].Num != 2 || a[2].Num != 4 || a[3].Num != 2 || a[4].Num != 1 || a[5].Num != 3 {
		t.Fatalf("group a = %v", a)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	tab := NewTable("v")
	tab.Append([]expr.Value{expr.Float(2)})
	tab.Append([]expr.Value{expr.Null})
	out, err := Aggregate(tab, nil, []AggSpec{
		{Func: "count", As: "all"}, // COUNT(*) would need Var "";
		{Func: "count", Var: "v", As: "nonnull"},
		{Func: "avg", Var: "v", As: "m"},
	}, nil)
	if err == nil {
		// First spec has Var "" and func count -> COUNT(*).
		row := out.Rows[0]
		if row[0].Num != 2 || row[1].Num != 1 || row[2].Num != 2 {
			t.Fatalf("row = %v", row)
		}
		return
	}
	t.Fatal(err)
}

func TestAggregateErrors(t *testing.T) {
	tab := NewTable("v")
	if _, err := Aggregate(tab, []string{"ghost"}, []AggSpec{{Func: "count", As: "n"}}, nil); err == nil {
		t.Fatal("unknown group var accepted")
	}
	if _, err := Aggregate(tab, nil, []AggSpec{{Func: "sum", As: "n"}}, nil); err == nil {
		t.Fatal("SUM(*) accepted")
	}
	if _, err := Aggregate(tab, nil, []AggSpec{{Func: "count", Var: "ghost", As: "n"}}, nil); err == nil {
		t.Fatal("unknown aggregate var accepted")
	}
	withData := NewTable("v")
	withData.Append([]expr.Value{expr.Float(1)})
	if _, err := Aggregate(withData, nil, []AggSpec{{Func: "median", Var: "v", As: "n"}}, nil); err == nil {
		t.Fatal("unknown aggregate function accepted")
	}
}

func TestAggregateEmptyUngrouped(t *testing.T) {
	tab := NewTable("v")
	out, err := Aggregate(tab, nil, []AggSpec{
		{Func: "count", As: "n"},
		{Func: "max", Var: "v", As: "hi"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].Num != 0 || !out.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate = %v", out.Rows)
	}
}

// Properties: group counts sum to the row count; per-group min <= avg
// <= max; sum of group sums equals the total sum.
func TestAggregateConservationProperty(t *testing.T) {
	f := func(groups []uint8, vals []int16) bool {
		tab := aggTable(groups, vals)
		out, err := Aggregate(tab, []string{"g"}, []AggSpec{
			{Func: "count", As: "n"},
			{Func: "sum", Var: "v", As: "s"},
			{Func: "avg", Var: "v", As: "m"},
			{Func: "min", Var: "v", As: "lo"},
			{Func: "max", Var: "v", As: "hi"},
		}, nil)
		if err != nil {
			return false
		}
		totalRows, totalSum := 0.0, 0.0
		for _, row := range tab.Rows {
			totalRows++
			totalSum += row[1].Num
		}
		gotRows, gotSum := 0.0, 0.0
		for _, row := range out.Rows {
			n, s, m, lo, hi := row[1].Num, row[2].Num, row[3], row[4], row[5]
			gotRows += n
			gotSum += s
			if n > 0 {
				if m.IsNull() || lo.IsNull() || hi.IsNull() {
					return false
				}
				if lo.Num > m.Num+1e-9 || m.Num > hi.Num+1e-9 {
					return false
				}
			}
		}
		return gotRows == totalRows && gotSum == totalSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
