package exec

import (
	"ids/internal/expr"
	"ids/internal/mpp"
)

// BIND runs at the post-gather, late-materialization boundary: computed
// values (floats, strings, booleans) cannot ride in the dictionary-ID
// columnar stream, and per-rank interning would break cross-rank
// exchange determinism. After Gather every rank holds the full solution
// table, so both engines share these row operators verbatim and agree
// byte-for-byte.

// BindSpec is one BIND(expr AS ?var) computed column.
type BindSpec struct {
	Var  string
	Expr expr.Expr
}

// ApplyBinds appends one computed column per spec, in order, to the
// gathered table. An evaluation error binds null for that row — the
// W3C rule that an erroring BIND leaves the variable unbound while the
// solution survives. UDF calls are charged to the rank clock.
func ApplyBinds(r *mpp.Rank, t *Table, binds []BindSpec, funcs expr.FuncResolver, res expr.Resolver) *Table {
	for _, b := range binds {
		cols := t.colIndex()
		rec := &callRecorder{inner: funcs}
		ctx := &expr.Ctx{Funcs: rec, Terms: res}
		out := NewTable(append(append(make([]string, 0, len(t.Vars)+1), t.Vars...), b.Var)...)
		out.Rows = make([][]expr.Value, 0, len(t.Rows))
		for _, row := range t.Rows {
			rec.calls = rec.calls[:0]
			ctx.Env = rowEnv{cols: cols, row: row}
			v, err := expr.Eval(b.Expr, ctx)
			for _, call := range rec.calls {
				r.Charge(call.cost)
			}
			if err != nil {
				v = expr.Null
			}
			nr := make([]expr.Value, 0, len(row)+1)
			nr = append(append(nr, row...), v)
			out.Rows = append(out.Rows, nr)
		}
		t = out
	}
	return t
}

// ApplyPostFilters evaluates FILTER expressions that reference bind
// aliases, dropping rows whose effective boolean value errors or is
// false (standard FILTER semantics, applied on the gathered table
// right after ApplyBinds).
func ApplyPostFilters(r *mpp.Rank, t *Table, filters []expr.Expr, funcs expr.FuncResolver, res expr.Resolver) *Table {
	if len(filters) == 0 {
		return t
	}
	cols := t.colIndex()
	rec := &callRecorder{inner: funcs}
	ctx := &expr.Ctx{Funcs: rec, Terms: res}
	out := NewTable(t.Vars...)
	for _, row := range t.Rows {
		ctx.Env = rowEnv{cols: cols, row: row}
		keep := true
		for _, f := range filters {
			rec.calls = rec.calls[:0]
			ok, err := expr.EvalBool(f, ctx)
			for _, call := range rec.calls {
				r.Charge(call.cost)
			}
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}
