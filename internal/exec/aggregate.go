package exec

import (
	"fmt"
	"math"

	"ids/internal/expr"
)

// AggSpec is one aggregate of a grouped query.
type AggSpec struct {
	Func string // "count", "sum", "avg", "min", "max"
	Var  string // aggregated variable; empty means * (count only)
	As   string // output column name
}

// Aggregate groups the (gathered) table by the groupBy columns and
// computes the aggregates per group, returning a table with columns
// groupBy... followed by each aggregate's As name. With no groupBy
// columns the whole input forms one group. Numeric aggregates resolve
// values through res and skip non-numeric bindings; COUNT(?v) counts
// non-null bindings; COUNT(*) counts rows. Group order follows first
// appearance, keeping results deterministic.
func Aggregate(t *Table, groupBy []string, aggs []AggSpec, res expr.Resolver) (*Table, error) {
	gIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		c := t.Col(g)
		if c < 0 {
			return nil, fmt.Errorf("exec: GROUP BY unbound variable ?%s", g)
		}
		gIdx[i] = c
	}
	aIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Var == "" {
			if a.Func != "count" {
				return nil, fmt.Errorf("exec: %s(*) is not defined", a.Func)
			}
			aIdx[i] = -1
			continue
		}
		c := t.Col(a.Var)
		if c < 0 {
			return nil, fmt.Errorf("exec: aggregate over unbound variable ?%s", a.Var)
		}
		aIdx[i] = c
	}

	type accum struct {
		key    []expr.Value
		count  []int64
		sum    []float64
		min    []float64
		max    []float64
		numcnt []int64
	}
	newAccum := func(key []expr.Value) *accum {
		a := &accum{
			key:    key,
			count:  make([]int64, len(aggs)),
			sum:    make([]float64, len(aggs)),
			min:    make([]float64, len(aggs)),
			max:    make([]float64, len(aggs)),
			numcnt: make([]int64, len(aggs)),
		}
		for i := range a.min {
			a.min[i] = math.Inf(1)
			a.max[i] = math.Inf(-1)
		}
		return a
	}

	groups := map[string]*accum{}
	var order []*accum
	for _, row := range t.Rows {
		key := make([]expr.Value, len(gIdx))
		for i, c := range gIdx {
			key[i] = row[c]
		}
		k := rowKey(key)
		acc, ok := groups[k]
		if !ok {
			acc = newAccum(key)
			groups[k] = acc
			order = append(order, acc)
		}
		for i, a := range aggs {
			if aIdx[i] < 0 { // COUNT(*)
				acc.count[i]++
				continue
			}
			v := row[aIdx[i]]
			if v.IsNull() {
				continue
			}
			acc.count[i]++
			rv := v
			if rv.Kind == expr.KindID && res != nil {
				rv = res.ResolveID(rv.ID)
			}
			if rv.Kind == expr.KindFloat {
				acc.numcnt[i]++
				acc.sum[i] += rv.Num
				if rv.Num < acc.min[i] {
					acc.min[i] = rv.Num
				}
				if rv.Num > acc.max[i] {
					acc.max[i] = rv.Num
				}
			}
			_ = a
		}
	}

	outVars := append([]string{}, groupBy...)
	for _, a := range aggs {
		outVars = append(outVars, a.As)
	}
	out := NewTable(outVars...)
	for _, acc := range order {
		row := make([]expr.Value, 0, len(outVars))
		row = append(row, acc.key...)
		for i, a := range aggs {
			switch a.Func {
			case "count":
				row = append(row, expr.Float(float64(acc.count[i])))
			case "sum":
				row = append(row, expr.Float(acc.sum[i]))
			case "avg":
				if acc.numcnt[i] == 0 {
					row = append(row, expr.Null)
				} else {
					row = append(row, expr.Float(acc.sum[i]/float64(acc.numcnt[i])))
				}
			case "min":
				if acc.numcnt[i] == 0 {
					row = append(row, expr.Null)
				} else {
					row = append(row, expr.Float(acc.min[i]))
				}
			case "max":
				if acc.numcnt[i] == 0 {
					row = append(row, expr.Null)
				} else {
					row = append(row, expr.Float(acc.max[i]))
				}
			default:
				return nil, fmt.Errorf("exec: unknown aggregate %q", a.Func)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	// An aggregate over an empty, ungrouped input still yields one row
	// (COUNT(*) = 0), per SQL/SPARQL convention.
	if len(out.Rows) == 0 && len(groupBy) == 0 {
		row := make([]expr.Value, 0, len(aggs))
		for _, a := range aggs {
			if a.Func == "count" {
				row = append(row, expr.Float(0))
			} else {
				row = append(row, expr.Null)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
