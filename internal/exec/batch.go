package exec

import (
	"fmt"

	"ids/internal/dict"
	"ids/internal/expr"
)

// Batch is the columnar solution set flowing through the pre-gather
// pipeline: one dict.ID vector per variable, positionally aligned.
// Everything before the gather boundary is dictionary-encoded — scans
// bind raw IDs, joins compare IDs, and FILTER expressions resolve IDs
// lazily through the resolver — so the hot path never boxes values.
// dict.None (never assigned to a term) marks an unbound cell, matching
// the row engine's expr.Null for OPTIONAL null-extension.
//
// NRows is explicit so zero-width batches (patterns with no variables)
// still carry their multiplicity through joins.
type Batch struct {
	Vars  []string
	Cols  [][]dict.ID
	NRows int
}

// NewBatch returns an empty batch with the given header.
func NewBatch(vars ...string) *Batch {
	return &Batch{Vars: vars, Cols: make([][]dict.ID, len(vars))}
}

// Len returns the local row count.
func (b *Batch) Len() int { return b.NRows }

// Col returns the column index of the named variable, or -1.
func (b *Batch) Col(name string) int {
	for i, v := range b.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Project returns a batch with only the named columns, in order —
// a pointer permutation, zero copies. Unknown names error.
func (b *Batch) Project(names []string) (*Batch, error) {
	if len(names) == 0 {
		return b, nil // SELECT *
	}
	out := &Batch{Vars: names, Cols: make([][]dict.ID, len(names)), NRows: b.NRows}
	for i, n := range names {
		c := b.Col(n)
		if c < 0 {
			return nil, fmt.Errorf("exec: projection of unbound variable ?%s", n)
		}
		out.Cols[i] = b.Cols[c]
	}
	return out, nil
}

// Materialize converts the batch to a row table at the late-
// materialization boundary (gather). All cells of all rows share one
// backing array, so the whole result is three heap objects (cells,
// row headers, table) instead of the row engine's one-per-row.
func (b *Batch) Materialize() *Table {
	t := &Table{Vars: b.Vars}
	n, w := b.NRows, len(b.Vars)
	if n == 0 {
		return t
	}
	cells := make([]expr.Value, n*w)
	t.Rows = make([][]expr.Value, n)
	for i := 0; i < n; i++ {
		row := cells[i*w : (i+1)*w : (i+1)*w]
		for j, col := range b.Cols {
			if id := col[i]; id != dict.None {
				row[j] = expr.IDVal(id)
			} else {
				row[j] = expr.Null
			}
		}
		t.Rows[i] = row
	}
	return t
}

// hashBatchRow streams row i's key-column IDs through FNV-1a,
// producing the 64-bit join key with zero allocations.
func hashBatchRow(cols [][]dict.ID, keyIdx []int, i int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range keyIdx {
		h = fnvUint64(h, uint64(cols[c][i]))
		h = fnvByte(h, 0xfe)
	}
	return h
}

// batchKeyEqual reports whether row ai of a and row bi of b agree on
// their key columns — the collision guard behind hashed lookups.
func batchKeyEqual(a [][]dict.ID, aIdx []int, ai int, b [][]dict.ID, bIdx []int, bi int) bool {
	for k := range aIdx {
		if a[aIdx[k]][ai] != b[bIdx[k]][bi] {
			return false
		}
	}
	return true
}

// gatherBatch builds a batch by gathering the selected rows of src
// column-wise into arena-backed vectors. keep[i] is the src row for
// output row i.
func gatherBatch(a *Arena, src *Batch, keep []int32) *Batch {
	out := &Batch{Vars: src.Vars, Cols: make([][]dict.ID, len(src.Vars)), NRows: len(keep)}
	for j, col := range src.Cols {
		dst := a.AllocIDs(len(keep))
		for i, r := range keep {
			dst[i] = col[r]
		}
		out.Cols[j] = dst
	}
	return out
}

// batchChunk is the wire format of a batch exchange: column slices
// plus an explicit row count (columns may be empty for zero-width
// batches). Chunks reference arena memory of the sending rank; the
// collectives' trailing barriers plus the engine's end-of-world arena
// recycling guarantee the memory outlives every reader.
type batchChunk struct {
	cols [][]dict.ID
	n    int
}

func chunkRows(c batchChunk) int { return c.n }

// sliceChunk views rows [lo, hi) of b as a chunk, zero-copy.
func sliceChunk(a *Arena, b *Batch, lo, hi int) batchChunk {
	cols := a.AllocCols(len(b.Cols))
	for i, col := range b.Cols {
		cols[i] = col[lo:hi:hi]
	}
	return batchChunk{cols: cols, n: hi - lo}
}

// selChunk builds a chunk from selected rows, arena-backed.
func selChunk(a *Arena, b *Batch, sel []int32) batchChunk {
	cols := a.AllocCols(len(b.Cols))
	for j, col := range b.Cols {
		dst := a.AllocIDs(len(sel))
		for i, r := range sel {
			dst[i] = col[r]
		}
		cols[j] = dst
	}
	return batchChunk{cols: cols, n: len(sel)}
}

// concatChunks concatenates received chunks (all with b's width) into
// one arena-backed batch with the given header.
func concatChunks(a *Arena, vars []string, chunks []batchChunk) *Batch {
	total := 0
	for _, c := range chunks {
		total += c.n
	}
	out := &Batch{Vars: vars, Cols: make([][]dict.ID, len(vars)), NRows: total}
	for j := range vars {
		dst := a.AllocIDs(total)
		off := 0
		for _, c := range chunks {
			if c.n == 0 {
				continue
			}
			copy(dst[off:off+c.n], c.cols[j])
			off += c.n
		}
		out.Cols[j] = dst
	}
	return out
}
