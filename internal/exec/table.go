// Package exec implements the physical query operators of the IDS
// engine, executed rank-parallel on the mpp runtime: shard scans,
// distributed hash joins, FILTER evaluation with profiling-driven
// expression reordering (paper §2.4.3), solution re-balancing between
// operators (paper §2.4.2), and the output operators (project,
// distinct, order, limit, gather).
package exec

import (
	"fmt"
	"sort"

	"ids/internal/expr"
)

// Table is a set of solutions: rows of values positioned by the Vars
// header. Each rank holds its own partition of the logical table.
type Table struct {
	Vars []string
	Rows [][]expr.Value
}

// NewTable returns an empty table with the given header.
func NewTable(vars ...string) *Table {
	return &Table{Vars: vars}
}

// Col returns the column index of the named variable, or -1.
func (t *Table) Col(name string) int {
	for i, v := range t.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Len returns the local row count.
func (t *Table) Len() int { return len(t.Rows) }

// Append adds a row; the row length must match the header.
func (t *Table) Append(row []expr.Value) {
	if len(row) != len(t.Vars) {
		panic(fmt.Sprintf("exec: row width %d != header width %d", len(row), len(t.Vars)))
	}
	t.Rows = append(t.Rows, row)
}

// rowEnv adapts one row to expr.Env.
type rowEnv struct {
	cols map[string]int
	row  []expr.Value
}

func (e rowEnv) Lookup(name string) (expr.Value, bool) {
	i, ok := e.cols[name]
	if !ok {
		return expr.Null, false
	}
	return e.row[i], true
}

// colIndex builds the name->index map once per operator invocation.
func (t *Table) colIndex() map[string]int {
	m := make(map[string]int, len(t.Vars))
	for i, v := range t.Vars {
		m[v] = i
	}
	return m
}

// Project returns a table with only the named columns, in order.
// Unknown names produce an error.
func (t *Table) Project(names []string) (*Table, error) {
	if len(names) == 0 {
		return t, nil // SELECT *
	}
	idx := make([]int, len(names))
	for i, n := range names {
		c := t.Col(n)
		if c < 0 {
			return nil, fmt.Errorf("exec: projection of unbound variable ?%s", n)
		}
		idx[i] = c
	}
	out := NewTable(names...)
	out.Rows = make([][]expr.Value, len(t.Rows))
	for r, row := range t.Rows {
		nr := make([]expr.Value, len(idx))
		for i, c := range idx {
			nr[i] = row[c]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// rowKey serializes a row for hashing/dedup.
func rowKey(row []expr.Value) string {
	// Values are small; fmt-based keys are adequate for the engine's
	// dedup and join paths and keep the code simple.
	key := make([]byte, 0, len(row)*12)
	for _, v := range row {
		key = append(key, byte(v.Kind))
		switch v.Kind {
		case expr.KindID:
			key = appendUint(key, uint64(v.ID))
		case expr.KindFloat:
			key = append(key, []byte(fmt.Sprintf("%g", v.Num))...)
		case expr.KindString:
			key = append(key, []byte(v.Str)...)
		case expr.KindBool:
			if v.Bool {
				key = append(key, 1)
			} else {
				key = append(key, 0)
			}
		}
		key = append(key, 0xff)
	}
	return string(key)
}

func appendUint(b []byte, u uint64) []byte {
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// DistinctLocal removes duplicate rows within this rank's partition,
// preserving first-seen order.
func (t *Table) DistinctLocal() *Table {
	seen := make(map[string]bool, len(t.Rows))
	out := NewTable(t.Vars...)
	for _, row := range t.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// SortBy sorts rows by the given keys (variable name + direction).
// Values compare with expr.Compare under the resolver; incomparable
// pairs keep their relative order.
func (t *Table) SortBy(keys []SortKey, res expr.Resolver) {
	if len(keys) == 0 {
		return
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = t.Col(k.Var)
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for i, k := range keys {
			c := idx[i]
			if c < 0 {
				continue
			}
			cmp, ok := expr.Compare(t.Rows[a][c], t.Rows[b][c], res)
			if !ok || cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// SortKey is one ordering key.
type SortKey struct {
	Var  string
	Desc bool
}

// Slice applies OFFSET/LIMIT semantics (limit < 0 means unlimited).
func (t *Table) Slice(offset, limit int) *Table {
	out := NewTable(t.Vars...)
	if offset < 0 {
		offset = 0
	}
	if offset >= len(t.Rows) {
		return out
	}
	rows := t.Rows[offset:]
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out.Rows = rows
	return out
}
