package exec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/sparql"
	"ids/internal/triple"
	"ids/internal/udf"
)

func topo(n int) mpp.Topology { return mpp.Topology{Nodes: 1, RanksPerNode: n} }

func buildGraph(nshards int) *kg.Graph {
	g := kg.New(nshards)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	for i := 0; i < 20; i++ {
		s := iri(fmt.Sprintf("http://x/person%d", i))
		g.Add(s, iri("http://x/age"), lit(fmt.Sprintf("%d", 20+i)))
		g.Add(s, iri("http://x/name"), lit(fmt.Sprintf("p%d", i)))
		if i > 0 {
			g.Add(s, iri("http://x/knows"), iri(fmt.Sprintf("http://x/person%d", i-1)))
		}
	}
	g.Seal()
	return g
}

func pat(s, p, o string) sparql.TriplePattern {
	mk := func(x string) sparql.TermOrVar {
		if len(x) > 0 && x[0] == '?' {
			return sparql.V(x[1:])
		}
		if len(x) > 0 && x[0] == '"' {
			return sparql.T(dict.Term{Kind: dict.Literal, Value: x[1 : len(x)-1]})
		}
		return sparql.T(dict.Term{Kind: dict.IRI, Value: x})
	}
	return sparql.TriplePattern{S: mk(s), P: mk(p), O: mk(o)}
}

// runWorld executes body on an n-rank world, failing the test on error.
func runWorld(t *testing.T, n int, body func(r *mpp.Rank) error) *mpp.Report {
	t.Helper()
	rep, err := mpp.Run(topo(n), mpp.DefaultNet(), 1, body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestScanDistributed(t *testing.T) {
	g := buildGraph(4)
	var mu sync.Mutex
	total := 0
	runWorld(t, 4, func(r *mpp.Rank) error {
		tab, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/age", "?a"))
		if err != nil {
			return err
		}
		if len(tab.Vars) != 2 || tab.Vars[0] != "s" || tab.Vars[1] != "a" {
			return fmt.Errorf("vars = %v", tab.Vars)
		}
		mu.Lock()
		total += tab.Len()
		mu.Unlock()
		return nil
	})
	if total != 20 {
		t.Fatalf("scanned %d age triples across ranks, want 20", total)
	}
}

func TestScanUnknownTermEmpty(t *testing.T) {
	g := buildGraph(2)
	runWorld(t, 2, func(r *mpp.Rank) error {
		tab, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/doesnotexist", "?o"))
		if err != nil {
			return err
		}
		if tab.Len() != 0 {
			return fmt.Errorf("unknown predicate matched %d", tab.Len())
		}
		return nil
	})
}

func TestScanRepeatedVariable(t *testing.T) {
	g := kg.New(1)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	g.Add(iri("http://x/a"), iri("http://x/self"), iri("http://x/a"))
	g.Add(iri("http://x/a"), iri("http://x/self"), iri("http://x/b"))
	g.Seal()
	runWorld(t, 1, func(r *mpp.Rank) error {
		tab, err := Scan(r, g.Shard(0), g.Dict, pat("?x", "http://x/self", "?x"))
		if err != nil {
			return err
		}
		if tab.Len() != 1 {
			return fmt.Errorf("repeated var matched %d rows, want 1", tab.Len())
		}
		return nil
	})
}

func TestHashJoinMatchesReference(t *testing.T) {
	g := buildGraph(4)
	// Reference: join age and knows on ?s serially.
	type pair struct{ s, a, k dict.ID }
	want := map[pair]bool{}
	ageP, _ := g.Dict.LookupIRI("http://x/age")
	knowsP, _ := g.Dict.LookupIRI("http://x/knows")
	// Build reference from graph contents.
	ages := map[dict.ID]dict.ID{}
	knows := map[dict.ID][]dict.ID{}
	for i := 0; i < g.NumShards(); i++ {
		g.Shard(i).Match(triple.Pattern{P: ageP}, func(tr triple.Triple) bool {
			ages[tr.S] = tr.O
			return true
		})
		g.Shard(i).Match(triple.Pattern{P: knowsP}, func(tr triple.Triple) bool {
			knows[tr.S] = append(knows[tr.S], tr.O)
			return true
		})
	}
	for s, a := range ages {
		for _, k := range knows[s] {
			want[pair{s, a, k}] = true
		}
	}
	var mu sync.Mutex
	got := map[pair]bool{}
	runWorld(t, 4, func(r *mpp.Rank) error {
		left, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/age", "?a"))
		if err != nil {
			return err
		}
		right, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/knows", "?k"))
		if err != nil {
			return err
		}
		joined, err := HashJoin(r, left, right)
		if err != nil {
			return err
		}
		si, ai, ki := joined.Col("s"), joined.Col("a"), joined.Col("k")
		mu.Lock()
		for _, row := range joined.Rows {
			got[pair{row[si].ID, row[ai].ID, row[ki].ID}] = true
		}
		mu.Unlock()
		return nil
	})
	if len(got) != len(want) {
		t.Fatalf("join produced %d pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %+v", p)
		}
	}
}

func TestHashJoinCrossProduct(t *testing.T) {
	var totalRows int
	var mu sync.Mutex
	runWorld(t, 2, func(r *mpp.Rank) error {
		left := NewTable("a")
		right := NewTable("b")
		if r.ID() == 0 {
			left.Append(row(expr.Float(1)))
			left.Append(row(expr.Float(2)))
			right.Append(row(expr.String("x")))
		} else {
			right.Append(row(expr.String("y")))
		}
		out, err := HashJoin(r, left, right)
		if err != nil {
			return err
		}
		mu.Lock()
		totalRows += out.Len()
		mu.Unlock()
		return nil
	})
	// 2 left rows x 2 replicated right rows.
	if totalRows != 4 {
		t.Fatalf("cross product rows = %d, want 4", totalRows)
	}
}

func TestGatherAndDistinctGlobal(t *testing.T) {
	runWorld(t, 4, func(r *mpp.Rank) error {
		tab := NewTable("v")
		// Every rank holds the same two rows -> global distinct = 2.
		tab.Append(row(expr.Float(1)))
		tab.Append(row(expr.Float(2)))
		dedup, err := DistinctGlobal(r, tab)
		if err != nil {
			return err
		}
		gathered, err := Gather(r, dedup)
		if err != nil {
			return err
		}
		if gathered.Len() != 2 {
			return fmt.Errorf("global distinct = %d rows, want 2", gathered.Len())
		}
		return nil
	})
}

// --- Re-balancing ---

func TestCountTargets(t *testing.T) {
	got := CountTargets(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountTargets = %v", got)
		}
	}
	sum := 0
	for _, x := range CountTargets(7, 3) {
		sum += x
	}
	if sum != 7 {
		t.Fatal("CountTargets does not conserve total")
	}
}

func TestCostTargetsPaperExample(t *testing.T) {
	// Paper §2.4.2 worked example: 1.4M solutions over 900 ranks; 500
	// ranks at 100 ops/s, 300 at 200 ops/s, 100 at 300 ops/s. The
	// assignment must be proportional 1:2:3 — slow ranks 1000, medium
	// 2000, fast 3000 solutions (the paper's chunk*ratio shape).
	rates := make([]float64, 900)
	for i := 0; i < 500; i++ {
		rates[i] = 100
	}
	for i := 500; i < 800; i++ {
		rates[i] = 200
	}
	for i := 800; i < 900; i++ {
		rates[i] = 300
	}
	targets := CostTargets(1_400_000, rates)
	if targets[0] != 1000 || targets[499] != 1000 {
		t.Fatalf("slow rank target = %d, want 1000", targets[0])
	}
	if targets[500] != 2000 || targets[799] != 2000 {
		t.Fatalf("medium rank target = %d, want 2000", targets[500])
	}
	if targets[800] != 3000 || targets[899] != 3000 {
		t.Fatalf("fast rank target = %d, want 3000", targets[800])
	}
	// Makespan: cost-aware 10s bound vs count-based ~15.6s, the
	// paper's claimed improvement direction.
	costTime := EstimatedMakespan(targets, rates)
	countTime := EstimatedMakespan(CountTargets(1_400_000, len(rates)), rates)
	if math.Abs(costTime-10) > 1e-9 {
		t.Fatalf("cost-aware makespan = %f, want 10", costTime)
	}
	if countTime <= costTime {
		t.Fatalf("count-based %f not worse than cost-aware %f", countTime, costTime)
	}
}

func TestCostTargetsConserveTotal(t *testing.T) {
	rates := []float64{1, 3, 0, 2.5, 7}
	for _, total := range []int{0, 1, 17, 1000, 99999} {
		targets := CostTargets(total, rates)
		sum := 0
		for _, x := range targets {
			sum += x
		}
		if sum != total {
			t.Fatalf("total %d: targets %v sum %d", total, targets, sum)
		}
	}
	// All-zero rates degrade to count-based.
	targets := CostTargets(10, []float64{0, 0})
	if targets[0] != 5 || targets[1] != 5 {
		t.Fatalf("zero-rate targets = %v", targets)
	}
}

func TestTransferPlanConserves(t *testing.T) {
	current := []int{10, 0, 5, 1}
	target := []int{4, 4, 4, 4}
	plan := TransferPlan(append([]int{}, current...), target)
	moved := make([]int, 4)
	for from := range plan {
		for to, n := range plan[from] {
			if n < 0 {
				t.Fatal("negative transfer")
			}
			moved[from] -= n
			moved[to] += n
		}
	}
	for i := range current {
		if current[i]+moved[i] != target[i] {
			t.Fatalf("rank %d: %d + %d != %d", i, current[i], moved[i], target[i])
		}
	}
}

func TestSendRowMatchesTransferPlan(t *testing.T) {
	current := []int{10, 0, 5, 1, 0, 8}
	target := []int{4, 4, 4, 4, 4, 4}
	plan := TransferPlan(append([]int{}, current...), target)
	for me := range current {
		row := SendRow(append([]int{}, current...), target, me)
		for dst := range row {
			if row[dst] != plan[me][dst] {
				t.Fatalf("SendRow(%d)[%d] = %d, plan = %d", me, dst, row[dst], plan[me][dst])
			}
		}
	}
}

func TestRebalanceCountEndToEnd(t *testing.T) {
	counts := make([]int, 4)
	runWorld(t, 4, func(r *mpp.Rank) error {
		tab := NewTable("v")
		// Rank 0 holds everything.
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				tab.Append(row(expr.Float(float64(i))))
			}
		}
		out, err := Rebalance(r, tab, RebalanceCount, 1)
		if err != nil {
			return err
		}
		counts[r.ID()] = out.Len()
		return nil
	})
	for i, c := range counts {
		if c != 25 {
			t.Fatalf("rank %d has %d rows after count rebalance: %v", i, c, counts)
		}
	}
}

func TestRebalanceCostProportional(t *testing.T) {
	counts := make([]int, 4)
	runWorld(t, 4, func(r *mpp.Rank) error {
		tab := NewTable("v")
		if r.ID() == 0 {
			for i := 0; i < 120; i++ {
				tab.Append(row(expr.Float(float64(i))))
			}
		}
		// Rank rates 1,1,2,2 -> targets 20,20,40,40.
		rate := 1.0
		if r.ID() >= 2 {
			rate = 2.0
		}
		out, err := Rebalance(r, tab, RebalanceCost, rate)
		if err != nil {
			return err
		}
		counts[r.ID()] = out.Len()
		return nil
	})
	want := []int{20, 20, 40, 40}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestRebalanceCostSimilarSpeedsFallsBack(t *testing.T) {
	counts := make([]int, 4)
	runWorld(t, 4, func(r *mpp.Rank) error {
		tab := NewTable("v")
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				tab.Append(row(expr.Float(float64(i))))
			}
		}
		// Within 20% of each other: must fall back to count-based.
		rate := 1.0 + 0.05*float64(r.ID())
		out, err := Rebalance(r, tab, RebalanceCost, rate)
		if err != nil {
			return err
		}
		counts[r.ID()] = out.Len()
		return nil
	})
	for i, c := range counts {
		if c != 25 {
			t.Fatalf("rank %d: %d rows; similar speeds should equalize: %v", i, c, counts)
		}
	}
}

func TestRebalancePreservesRows(t *testing.T) {
	var mu sync.Mutex
	var all []float64
	runWorld(t, 3, func(r *mpp.Rank) error {
		tab := NewTable("v")
		for i := 0; i < (r.ID()+1)*10; i++ {
			tab.Append(row(expr.Float(float64(r.ID()*1000 + i))))
		}
		out, err := Rebalance(r, tab, RebalanceCount, 1)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, rw := range out.Rows {
			all = append(all, rw[0].Num)
		}
		mu.Unlock()
		return nil
	})
	if len(all) != 60 {
		t.Fatalf("total rows = %d, want 60", len(all))
	}
	sort.Float64s(all)
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("row duplicated during rebalance: %f", all[i])
		}
	}
}

func TestRebalanceNoneIsIdentity(t *testing.T) {
	runWorld(t, 2, func(r *mpp.Rank) error {
		tab := NewTable("v")
		tab.Append(row(expr.Float(float64(r.ID()))))
		out, err := Rebalance(r, tab, RebalanceNone, 1)
		if err != nil {
			return err
		}
		if out != tab {
			return errors.New("RebalanceNone should return the same table")
		}
		return nil
	})
}

// --- Filter ---

func newTestRegistry(t *testing.T) *udf.Registry {
	t.Helper()
	reg := udf.NewRegistry()
	err := reg.RegisterWithCost("gt10", func(args []expr.Value) (expr.Value, error) {
		return expr.Bool(args[0].Num > 10), nil
	}, func([]expr.Value) float64 { return 0.01 })
	if err != nil {
		t.Fatal(err)
	}
	err = reg.RegisterWithCost("expensiveTrue", func(args []expr.Value) (expr.Value, error) {
		return expr.Bool(true), nil
	}, func([]expr.Value) float64 { return 1.0 })
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func filterTable(n int) *Table {
	tab := NewTable("v")
	for i := 0; i < n; i++ {
		tab.Append(row(expr.Float(float64(i))))
	}
	return tab
}

func TestFilterBasic(t *testing.T) {
	reg := newTestRegistry(t)
	runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		e := &expr.Call{Name: "gt10", Args: []expr.Expr{&expr.Var{Name: "v"}}}
		out, stats, err := Filter(r, filterTable(20), e, reg, prof, nil, FilterOpts{})
		if err != nil {
			return err
		}
		if out.Len() != 9 { // 11..19
			return fmt.Errorf("passed %d rows, want 9", out.Len())
		}
		if stats.Evaluated != 20 || stats.Passed != 9 {
			return fmt.Errorf("stats = %+v", stats)
		}
		s := prof.Get("gt10")
		if s.Execs != 20 || s.Rejections != 11 {
			return fmt.Errorf("profile = %+v", s)
		}
		if math.Abs(s.TotalSeconds-0.2) > 1e-9 {
			return fmt.Errorf("total = %f", s.TotalSeconds)
		}
		return nil
	})
}

func TestFilterChargesClock(t *testing.T) {
	reg := newTestRegistry(t)
	rep := runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		e := &expr.Call{Name: "expensiveTrue", Args: []expr.Expr{&expr.Var{Name: "v"}}}
		_, _, err := Filter(r, filterTable(5), e, reg, prof, nil, FilterOpts{})
		return err
	})
	if math.Abs(rep.Makespan-5.0) > 0.1 {
		t.Fatalf("makespan = %f, want ~5 (5 rows x 1s)", rep.Makespan)
	}
}

func TestFilterSpeedFactor(t *testing.T) {
	reg := newTestRegistry(t)
	rep := runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		e := &expr.Call{Name: "expensiveTrue", Args: []expr.Expr{&expr.Var{Name: "v"}}}
		_, _, err := Filter(r, filterTable(5), e, reg, prof, nil, FilterOpts{SpeedFactor: 2})
		if err != nil {
			return err
		}
		if got, _ := prof.EstimateCost("expensiveTrue"); math.Abs(got-2.0) > 1e-9 {
			return fmt.Errorf("profiled mean = %f, want 2 (speed factor applied)", got)
		}
		return nil
	})
	if math.Abs(rep.Makespan-10.0) > 0.1 {
		t.Fatalf("makespan = %f, want ~10", rep.Makespan)
	}
}

func TestFilterShortCircuitSavesCost(t *testing.T) {
	reg := newTestRegistry(t)
	runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		// gt10 rejects 0..10, so expensiveTrue must only run for the
		// 9 surviving rows when ordered cheap-first.
		e := &expr.And{Children: []expr.Expr{
			&expr.Call{Name: "gt10", Args: []expr.Expr{&expr.Var{Name: "v"}}},
			&expr.Call{Name: "expensiveTrue", Args: []expr.Expr{&expr.Var{Name: "v"}}},
		}}
		_, _, err := Filter(r, filterTable(20), e, reg, prof, nil, FilterOpts{})
		if err != nil {
			return err
		}
		if got := prof.Get("expensiveTrue").Execs; got != 9 {
			return fmt.Errorf("expensive UDF ran %d times, want 9", got)
		}
		return nil
	})
}

func TestFilterReorderingMovesCheapFirst(t *testing.T) {
	reg := newTestRegistry(t)
	runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		// Warm the profile so the optimizer knows the costs.
		prof.Record("gt10", 0.01, true)
		prof.Record("expensiveTrue", 1.0, false)
		// Expensive first in the written query.
		e := &expr.And{Children: []expr.Expr{
			&expr.Call{Name: "expensiveTrue", Args: []expr.Expr{&expr.Var{Name: "v"}}},
			&expr.Call{Name: "gt10", Args: []expr.Expr{&expr.Var{Name: "v"}}},
		}}
		_, stats, err := Filter(r, filterTable(20), e, reg, prof, nil, FilterOpts{Reorder: true})
		if err != nil {
			return err
		}
		// With reordering the cheap gt10 runs first; expensiveTrue only
		// on survivors (9 of 20) plus the warmup record.
		if got := prof.Get("expensiveTrue").Execs - 1; got != 9 {
			return fmt.Errorf("expensive execs = %d, want 9", got)
		}
		if len(stats.Order) != 2 || stats.Order[0] != "gt10(?v)" {
			return fmt.Errorf("order = %v", stats.Order)
		}
		return nil
	})
}

func TestFilterErrorRowsDropped(t *testing.T) {
	reg := udf.NewRegistry()
	_ = reg.Register("failOdd", func(args []expr.Value) (expr.Value, error) {
		if int(args[0].Num)%2 == 1 {
			return expr.Null, errors.New("odd input")
		}
		return expr.Bool(true), nil
	})
	runWorld(t, 1, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		e := &expr.Call{Name: "failOdd", Args: []expr.Expr{&expr.Var{Name: "v"}}}
		out, stats, err := Filter(r, filterTable(10), e, reg, prof, nil, FilterOpts{})
		if err != nil {
			return err
		}
		if out.Len() != 5 || stats.Errors != 5 {
			return fmt.Errorf("passed=%d errors=%d, want 5/5", out.Len(), stats.Errors)
		}
		// Errored evaluations count as rejections in the profile.
		if prof.Get("failOdd").Rejections != 5 {
			return fmt.Errorf("rejections = %d", prof.Get("failOdd").Rejections)
		}
		return nil
	})
}

func TestFilterWithRebalance(t *testing.T) {
	reg := newTestRegistry(t)
	counts := make([]int, 4)
	runWorld(t, 4, func(r *mpp.Rank) error {
		prof := udf.NewProfiler()
		tab := NewTable("v")
		if r.ID() == 0 {
			for i := 0; i < 80; i++ {
				tab.Append(row(expr.Float(float64(i + 100))))
			}
		}
		e := &expr.Call{Name: "gt10", Args: []expr.Expr{&expr.Var{Name: "v"}}}
		out, stats, err := Filter(r, tab, e, reg, prof, nil, FilterOpts{Rebalance: RebalanceCount})
		if err != nil {
			return err
		}
		counts[r.ID()] = stats.Evaluated
		_ = out
		return nil
	})
	for i, c := range counts {
		if c != 20 {
			t.Fatalf("rank %d evaluated %d rows, want 20: %v", i, c, counts)
		}
	}
}
