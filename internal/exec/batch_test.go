package exec

import (
	"fmt"
	"sort"
	"testing"

	"ids/internal/dict"
	"ids/internal/expr"
	"ids/internal/mpp"
	"ids/internal/udf"
)

// batchRows renders a batch as sorted "id,id,..." strings for
// order-insensitive comparison.
func batchRows(b *Batch) []string {
	out := make([]string, b.NRows)
	for i := 0; i < b.NRows; i++ {
		s := ""
		for j := range b.Cols {
			s += fmt.Sprintf("%d,", b.Cols[j][i])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// tableRowsAsIDs renders a table the same way (IDs and nulls only).
func tableRowsAsIDs(t *Table) []string {
	out := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		s := ""
		for _, v := range row {
			if v.Kind == expr.KindID {
				s += fmt.Sprintf("%d,", v.ID)
			} else {
				s += "0,"
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func TestScanBatchMatchesScan(t *testing.T) {
	g := buildGraph(2)
	runWorld(t, 2, func(r *mpp.Rank) error {
		a := NewArena()
		for _, p := range []struct{ s, p, o string }{
			{"?s", "http://x/age", "?a"},
			{"?s", "?p", "?o"},
			{"http://x/person3", "http://x/age", "?a"},
			{"?s", "http://x/nosuch", "?o"},
			{"?s", "http://x/knows", "?s"}, // repeated var: no self-loops
		} {
			tp := pat(p.s, p.p, p.o)
			rows, err := Scan(r, g.Shard(r.ID()), g.Dict, tp)
			if err != nil {
				return err
			}
			batch, err := ScanBatch(r, g.Shard(r.ID()), g.Dict, tp, a)
			if err != nil {
				return err
			}
			if got, want := batch.Len(), rows.Len(); got != want {
				return fmt.Errorf("pattern %v: batch %d rows, row engine %d", tp, got, want)
			}
			bt := batch.Materialize()
			br, rr := tableRowsAsIDs(bt), tableRowsAsIDs(rows)
			for i := range br {
				if br[i] != rr[i] {
					return fmt.Errorf("pattern %v row %d: %q vs %q", tp, i, br[i], rr[i])
				}
			}
		}
		return nil
	})
}

func TestHashJoinBatchMatchesHashJoin(t *testing.T) {
	g := buildGraph(2)
	runWorld(t, 2, func(r *mpp.Rank) error {
		a := NewArena()
		l, err := ScanBatch(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/knows", "?t"), a)
		if err != nil {
			return err
		}
		rt, err := ScanBatch(r, g.Shard(r.ID()), g.Dict, pat("?t", "http://x/age", "?a"), a)
		if err != nil {
			return err
		}
		joined, err := HashJoinBatch(r, l, rt, a)
		if err != nil {
			return err
		}
		// The engines partition by different hash functions, so per-rank
		// counts may differ; the gathered (global) row set must not.
		got, err := GatherBatch(r, joined, a)
		if err != nil {
			return err
		}
		lr, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/knows", "?t"))
		if err != nil {
			return err
		}
		rr, err := Scan(r, g.Shard(r.ID()), g.Dict, pat("?t", "http://x/age", "?a"))
		if err != nil {
			return err
		}
		wj, err := HashJoin(r, lr, rr)
		if err != nil {
			return err
		}
		want, err := Gather(r, wj)
		if err != nil {
			return err
		}
		if got.Len() != want.Len() {
			return fmt.Errorf("join rows: batch %d, row %d", got.Len(), want.Len())
		}
		gm, wm := tableRowsAsIDs(got.Materialize()), tableRowsAsIDs(want)
		for i := range gm {
			if gm[i] != wm[i] {
				return fmt.Errorf("join row %d: %q vs %q", i, gm[i], wm[i])
			}
		}
		return nil
	})
}

func TestLeftJoinBatchNullExtension(t *testing.T) {
	g := buildGraph(1)
	runWorld(t, 1, func(r *mpp.Rank) error {
		a := NewArena()
		l, err := ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/age", "?a"), a)
		if err != nil {
			return err
		}
		// Right side empty: every left row survives null-extended.
		empty, err := ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/nosuch", "?d"), a)
		if err != nil {
			return err
		}
		out, err := LeftJoinBatch(r, l, empty, a)
		if err != nil {
			return err
		}
		if out.Len() != l.Len() {
			return fmt.Errorf("left join dropped rows: %d vs %d", out.Len(), l.Len())
		}
		di := out.Col("d")
		if di < 0 {
			return fmt.Errorf("missing null-extended column, vars %v", out.Vars)
		}
		for i := 0; i < out.NRows; i++ {
			if out.Cols[di][i] != dict.None {
				return fmt.Errorf("row %d: unmatched right column bound to %d", i, out.Cols[di][i])
			}
		}
		// Materialized nulls must be expr.Null, as in the row engine.
		tab := out.Materialize()
		for _, row := range tab.Rows {
			if !row[di].IsNull() {
				return fmt.Errorf("materialized null cell = %v", row[di])
			}
		}
		return nil
	})
}

func TestDistinctAndFilterBatch(t *testing.T) {
	g := buildGraph(2)
	reg := udf.NewRegistry()
	runWorld(t, 2, func(r *mpp.Rank) error {
		a := NewArena()
		b, err := ScanBatch(r, g.Shard(r.ID()), g.Dict, pat("?s", "http://x/age", "?a"), a)
		if err != nil {
			return err
		}
		e := &expr.Cmp{Op: expr.GE, L: &expr.Var{Name: "a"}, R: &expr.Const{Val: expr.Float(30)}}
		prof := udf.NewProfiler()
		res := expr.DictResolver{Dict: g.Dict}
		fb, fstats, err := FilterBatch(r, b, e, reg, prof, res, FilterOpts{}, a)
		if err != nil {
			return err
		}
		if fstats.Evaluated != b.Len() {
			return fmt.Errorf("evaluated %d of %d", fstats.Evaluated, b.Len())
		}
		db, err := DistinctGlobalBatch(r, fb, a)
		if err != nil {
			return err
		}
		gb, err := GatherBatch(r, db, a)
		if err != nil {
			return err
		}
		// Ages 30..39 → 10 distinct rows on every rank after gather.
		if gb.Len() != 10 {
			return fmt.Errorf("gathered %d rows, want 10", gb.Len())
		}
		return nil
	})
}

// TestArenaWarmReuse pins the allocation contract: a second identical
// query against a Reset arena must add zero fresh heap.
func TestArenaWarmReuse(t *testing.T) {
	g := buildGraph(1)
	a := NewArena()
	run := func() {
		runWorld(t, 1, func(r *mpp.Rank) error {
			l, err := ScanBatch(r, g.Shard(0), g.Dict, pat("?s", "http://x/knows", "?t"), a)
			if err != nil {
				return err
			}
			rt, err := ScanBatch(r, g.Shard(0), g.Dict, pat("?t", "http://x/age", "?v"), a)
			if err != nil {
				return err
			}
			_, err = HashJoinBatch(r, l, rt, a)
			return err
		})
	}
	run()
	b0, m0 := a.Fresh()
	if b0 <= 0 || m0 <= 0 {
		t.Fatalf("cold run reported no fresh heap: %d/%d", b0, m0)
	}
	for i := 0; i < 3; i++ {
		a.Reset()
		run()
		b1, m1 := a.Fresh()
		if b1 != b0 || m1 != m0 {
			t.Fatalf("warm run %d grew the arena: bytes %d->%d mallocs %d->%d", i, b0, b1, m0, m1)
		}
	}
}

func TestArenaPoolSlots(t *testing.T) {
	p := NewArenaPool()
	s1 := p.Get(3, 2)
	if len(s1) != 2 {
		t.Fatalf("set size = %d", len(s1))
	}
	s1[0].AllocIDs(10)
	p.Put(3, s1)
	s2 := p.Get(3, 2)
	if s2[0] != s1[0] {
		t.Fatal("slot did not recycle its arena set")
	}
	if b, _ := s2[0].Fresh(); b <= 0 {
		t.Fatal("recycled arena lost its slab")
	}
	// Unslotted gets draw from the shared free list.
	p.Put(-1, s2)
	s3 := p.Get(-1, 2)
	if s3[0] != s2[0] {
		t.Fatal("free list did not recycle")
	}
}
