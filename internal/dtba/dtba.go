// Package dtba implements a drug-target binding-affinity predictor in
// the style of DeepDTA (Öztürk et al. 2018), the model the paper wires
// into IDS as a TensorFlow UDF. The paper's pre-trained network is not
// redistributable, so this package builds the same interface from
// scratch: a protein sequence and a SMILES string are embedded with
// hashed k-mer / n-gram bags and pushed through a small feed-forward
// network with deterministic, seed-derived weights. Outputs are pKd
// values in the standard [4, 11] range.
//
// The per-call virtual cost model mirrors the paper's observation
// (Fig. 5) that most DTBA predictions take around a second with a
// heavy tail of slower ones.
package dtba

import (
	"errors"
	"hash/fnv"
	"math"
)

// Model dimensions.
const (
	protDim   = 256 // hashed protein 3-mer bag
	smilesDim = 128 // hashed SMILES 2-gram bag
	hidden1   = 64
	hidden2   = 32
)

// Predictor is a deterministic feed-forward DTBA model. It is
// immutable after construction and safe for concurrent use.
type Predictor struct {
	w1 [][]float64 // (protDim+smilesDim) x hidden1
	b1 []float64
	w2 [][]float64 // hidden1 x hidden2
	b2 []float64
	w3 []float64 // hidden2
	b3 float64
}

// New constructs a predictor whose weights are derived from seed, so
// two predictors with the same seed agree exactly.
func New(seed uint64) *Predictor {
	rng := splitmix64{state: seed}
	p := &Predictor{
		w1: make([][]float64, protDim+smilesDim),
		b1: make([]float64, hidden1),
		w2: make([][]float64, hidden1),
		b2: make([]float64, hidden2),
		w3: make([]float64, hidden2),
	}
	scale1 := math.Sqrt(2.0 / float64(protDim+smilesDim))
	for i := range p.w1 {
		p.w1[i] = make([]float64, hidden1)
		for j := range p.w1[i] {
			p.w1[i][j] = rng.normal() * scale1
		}
	}
	scale2 := math.Sqrt(2.0 / hidden1)
	for i := range p.w2 {
		p.w2[i] = make([]float64, hidden2)
		for j := range p.w2[i] {
			p.w2[i][j] = rng.normal() * scale2
		}
	}
	scale3 := math.Sqrt(2.0 / hidden2)
	for i := range p.w3 {
		p.w3[i] = rng.normal() * scale3
	}
	return p
}

// ErrEmptyInput is returned for empty protein or SMILES inputs.
var ErrEmptyInput = errors.New("dtba: empty input")

// Predict returns the predicted binding affinity as pKd in [4, 11] for
// the (protein sequence, compound SMILES) pair.
func (p *Predictor) Predict(protein, smiles string) (float64, error) {
	if protein == "" || smiles == "" {
		return 0, ErrEmptyInput
	}
	x := make([]float64, protDim+smilesDim)
	hashBag(protein, 3, x[:protDim])
	hashBag(smiles, 2, x[protDim:])
	l2normalize(x[:protDim])
	l2normalize(x[protDim:])

	h1 := make([]float64, hidden1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := p.w1[i]
		for j := range h1 {
			h1[j] += xi * row[j]
		}
	}
	for j := range h1 {
		h1[j] = relu(h1[j] + p.b1[j])
	}
	h2 := make([]float64, hidden2)
	for i, hi := range h1 {
		if hi == 0 {
			continue
		}
		row := p.w2[i]
		for j := range h2 {
			h2[j] += hi * row[j]
		}
	}
	out := p.b3
	for j := range h2 {
		out += relu(h2[j]+p.b2[j]) * p.w3[j]
	}
	// Squash to the pKd range.
	return 4 + 7*sigmoid(out*2), nil
}

// Cost returns the simulated execution cost in seconds for one
// prediction of the given pair: deterministic per input, mostly near
// one second with a heavy tail, reproducing the DTBA variance the
// paper highlights as the reason per-UDF profiling matters.
func Cost(protein, smiles string) float64 {
	h := fnv.New64a()
	h.Write([]byte(protein))
	h.Write([]byte{0})
	h.Write([]byte(smiles))
	u := float64(h.Sum64()%1_000_000) / 1_000_000
	base := 0.2 + 0.9*u
	if u > 0.95 { // heavy tail: ~5% of predictions run 2-4x longer
		base *= 2 + 2*(u-0.95)/0.05
	}
	return base
}

func relu(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// hashBag accumulates hashed k-gram counts of s into out.
func hashBag(s string, k int, out []float64) {
	if len(s) < k {
		h := fnv.New32a()
		h.Write([]byte(s))
		out[int(h.Sum32())%len(out)]++
		return
	}
	for i := 0; i+k <= len(s); i++ {
		h := fnv.New32a()
		h.Write([]byte(s[i : i+k]))
		out[int(h.Sum32())%len(out)]++
	}
}

func l2normalize(v []float64) {
	ss := 0.0
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
}

// splitmix64 is a tiny deterministic PRNG for weight initialization.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// normal returns a standard-normal sample via Box-Muller.
func (s *splitmix64) normal() float64 {
	u1 := s.float64()
	for u1 == 0 {
		u1 = s.float64()
	}
	u2 := s.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
