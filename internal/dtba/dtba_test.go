package dtba

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const (
	protA = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"
	protB = "GSHMSLFDFFKNKGSAAATELTSLMEQLNTLTL"
	smiA  = "CC(=O)Oc1ccccc1C(=O)O"
	smiB  = "CCCCCC"
)

func TestPredictInRange(t *testing.T) {
	p := New(1)
	pairs := [][2]string{{protA, smiA}, {protA, smiB}, {protB, smiA}, {protB, smiB}}
	for _, pr := range pairs {
		v, err := p.Predict(pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		if v < 4 || v > 11 {
			t.Fatalf("Predict(%q,%q) = %f, out of pKd range", pr[0][:5], pr[1], v)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	p1, p2 := New(42), New(42)
	a, err := p1.Predict(protA, smiA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Predict(protA, smiA)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different outputs: %f vs %f", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := New(1).Predict(protA, smiA)
	b, _ := New(2).Predict(protA, smiA)
	if a == b {
		t.Fatalf("different seeds produced identical prediction %f", a)
	}
}

func TestPredictSensitiveToInputs(t *testing.T) {
	p := New(7)
	base, _ := p.Predict(protA, smiA)
	other, _ := p.Predict(protA, smiB)
	if base == other {
		t.Fatal("prediction insensitive to compound")
	}
	other2, _ := p.Predict(protB, smiA)
	if base == other2 {
		t.Fatal("prediction insensitive to protein")
	}
}

func TestPredictEmptyInputs(t *testing.T) {
	p := New(1)
	if _, err := p.Predict("", smiA); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Predict(protA, ""); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestPredictShortInputs(t *testing.T) {
	p := New(1)
	// Shorter than the k-gram sizes; must not panic.
	v, err := p.Predict("MK", "C")
	if err != nil {
		t.Fatal(err)
	}
	if v < 4 || v > 11 {
		t.Fatalf("short input prediction %f out of range", v)
	}
}

func TestCostDistribution(t *testing.T) {
	// Deterministic.
	if Cost(protA, smiA) != Cost(protA, smiA) {
		t.Fatal("Cost not deterministic")
	}
	// Range and tail: sample many pairs.
	minC, maxC := math.Inf(1), 0.0
	tail := 0
	const n = 2000
	for i := 0; i < n; i++ {
		c := Cost(protA, smiA+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('A'+(i/260)%26)))
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
		if c > 1.2 {
			tail++
		}
	}
	if minC < 0.1 || maxC > 5 {
		t.Fatalf("cost range [%f, %f] out of spec", minC, maxC)
	}
	if tail == 0 || tail > n/5 {
		t.Fatalf("heavy tail count %d of %d implausible", tail, n)
	}
}

// Property: predictions always stay in the pKd band for arbitrary
// printable inputs.
func TestPredictRangeProperty(t *testing.T) {
	p := New(3)
	f := func(prot, smi string) bool {
		if prot == "" || smi == "" {
			return true
		}
		v, err := p.Predict(prot, smi)
		return err == nil && v >= 4 && v <= 11 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionsSpread(t *testing.T) {
	// The model should not collapse to a constant: across 100 random
	// compounds the spread must exceed a minimal width.
	p := New(9)
	minV, maxV := math.Inf(1), math.Inf(-1)
	smiles := []string{"C", "CC", "CCO", "c1ccccc1", "CC(=O)O", "CCN", "CCCl", "C=O", "C#N", "CCCC"}
	for _, prot := range []string{protA, protB, protA + protB} {
		for _, s := range smiles {
			v, err := p.Predict(prot, s)
			if err != nil {
				t.Fatal(err)
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV-minV < 0.05 {
		t.Fatalf("prediction spread %f too narrow (model collapsed)", maxV-minV)
	}
}

func BenchmarkPredict(b *testing.B) {
	p := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(protA, smiA); err != nil {
			b.Fatal(err)
		}
	}
}
