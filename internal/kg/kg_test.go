package kg

import (
	"bytes"
	"strings"
	"testing"

	"ids/internal/dict"
	"ids/internal/triple"
)

func iri(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
func lit(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }

func TestAddAndQueryAcrossShards(t *testing.T) {
	g := New(4)
	for i := 0; i < 100; i++ {
		g.Add(iri("http://x/s"+string(rune('a'+i%26))+string(rune('0'+i/26))), iri("http://x/p"), lit("v"))
	}
	g.Seal()
	if g.Len() != 100 {
		t.Fatalf("Len = %d, want 100", g.Len())
	}
	pid, ok := g.Dict.LookupIRI("http://x/p")
	if !ok {
		t.Fatal("predicate not in dictionary")
	}
	total := 0
	for i := 0; i < g.NumShards(); i++ {
		total += g.Shard(i).Count(triple.Pattern{P: pid})
	}
	if total != 100 {
		t.Fatalf("matched %d, want 100", total)
	}
}

func TestSubjectsColocated(t *testing.T) {
	// All triples of one subject must land on the same shard.
	g := New(8)
	subj := iri("http://x/protein1")
	for i := 0; i < 10; i++ {
		g.Add(subj, iri("http://x/p"+string(rune('0'+i))), lit("v"))
	}
	g.Seal()
	nonEmpty := 0
	for i := 0; i < g.NumShards(); i++ {
		if g.Shard(i).Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("subject spread across %d shards", nonEmpty)
	}
}

func TestShardsBalanced(t *testing.T) {
	g := New(8)
	for i := 0; i < 8000; i++ {
		g.Add(iri("http://x/s"+itoa(i)), iri("http://x/p"), lit("v"))
	}
	g.Seal()
	for i := 0; i < g.NumShards(); i++ {
		n := g.Shard(i).Len()
		if n < 500 || n > 1500 {
			t.Fatalf("shard %d has %d triples; want near 1000", i, n)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestZeroShardsClamped(t *testing.T) {
	g := New(0)
	if g.NumShards() != 1 {
		t.Fatalf("NumShards = %d", g.NumShards())
	}
}

func TestLoadNTriples(t *testing.T) {
	src := `
# a comment
<http://x/s1> <http://x/name> "Ada" .
<http://x/s1> <http://x/age> "36"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s1> <http://x/label> "hi"@en .
<http://x/s2> <http://x/knows> <http://x/s1> .
_:b0 <http://x/p> "blank subject" .
<http://x/s3> <http://x/note> "esc \" quote" .
`
	g := New(2)
	n, err := g.LoadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("loaded %d, want 6", n)
	}
	g.Seal()
	// Typed literal round-trips with datatype.
	if _, ok := g.Dict.Lookup(dict.Term{Kind: dict.Literal, Value: "36", Datatype: "http://www.w3.org/2001/XMLSchema#integer"}); !ok {
		t.Fatal("typed literal lost its datatype")
	}
	// Language-tagged literal keeps its value.
	if _, ok := g.Dict.Lookup(dict.Term{Kind: dict.Literal, Value: "hi"}); !ok {
		t.Fatal("language-tagged literal missing")
	}
	if _, ok := g.Dict.Lookup(dict.Term{Kind: dict.Literal, Value: `esc " quote`}); !ok {
		t.Fatal("escaped literal mangled")
	}
}

func TestLoadNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> .`,             // missing object
		`"lit" <http://x/p> <http://x/o> .`,       // literal subject
		`<http://x/s> "lit" <http://x/o> .`,       // literal predicate
		`<http://x/s> <http://x/p> <http://x/o>`,  // missing dot
		`<http://x/s <http://x/p> <http://x/o> .`, // unterminated IRI
		`<http://x/s> <http://x/p> "open .`,       // unterminated literal
		`junk`,
	}
	for _, line := range bad {
		g := New(1)
		if _, err := g.LoadNTriples(strings.NewReader(line)); err == nil {
			t.Errorf("LoadNTriples(%q) succeeded, want error", line)
		}
	}
}

func TestWriteNTriplesRoundTrip(t *testing.T) {
	g := New(2)
	g.Add(iri("http://x/s"), iri("http://x/p"), lit("v"))
	g.Add(iri("http://x/s"), iri("http://x/q"), iri("http://x/o"))
	g.Seal()
	var buf bytes.Buffer
	if err := g.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New(3)
	n, err := g2.LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("round trip loaded %d", n)
	}
	g2.Seal()
	if g2.Len() != 2 {
		t.Fatalf("round trip Len = %d", g2.Len())
	}
}

func TestPredicateStats(t *testing.T) {
	g := New(4)
	for i := 0; i < 10; i++ {
		g.Add(iri("http://x/s"+itoa(i)), iri("http://x/common"), lit("v"))
	}
	g.Add(iri("http://x/s0"), iri("http://x/rare"), lit("v"))
	g.Seal()
	stats := g.PredicateStats()
	common, _ := g.Dict.LookupIRI("http://x/common")
	rare, _ := g.Dict.LookupIRI("http://x/rare")
	if stats[common] != 10 || stats[rare] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func BenchmarkLoadNTriples(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("<http://x/s")
		sb.WriteString(itoa(i))
		sb.WriteString("> <http://x/p> \"value\" .\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(8)
		if _, err := g.LoadNTriples(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}
