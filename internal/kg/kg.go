// Package kg assembles the dictionary and the per-rank triple shards
// into the IDS knowledge-graph datastore. Triples are hash-partitioned
// by subject across shards (one shard per MPP rank), mirroring how the
// Cray Graph Engine distributes its in-memory database, and can be
// bulk-loaded from N-Triples text.
package kg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"ids/internal/dict"
	"ids/internal/triple"
)

// Graph is a partitioned knowledge graph.
type Graph struct {
	Dict    *dict.Dict
	shards  []*triple.Store
	mu      []sync.Mutex // per-shard ingest locks
	nshards int
}

// New returns an empty graph partitioned into nshards shards.
func New(nshards int) *Graph {
	if nshards <= 0 {
		nshards = 1
	}
	g := &Graph{
		Dict:    dict.New(),
		shards:  make([]*triple.Store, nshards),
		mu:      make([]sync.Mutex, nshards),
		nshards: nshards,
	}
	for i := range g.shards {
		g.shards[i] = triple.New()
	}
	return g
}

// NumShards returns the shard count.
func (g *Graph) NumShards() int { return g.nshards }

// Shard returns shard i; the caller must not mutate it.
func (g *Graph) Shard(i int) *triple.Store { return g.shards[i] }

// shardFor routes a subject ID to its owning shard.
func (g *Graph) shardFor(s dict.ID) int {
	// Fibonacci hashing spreads sequential dictionary IDs well.
	return int((uint64(s) * 0x9e3779b97f4a7c15 >> 33) % uint64(g.nshards))
}

// ShardOf exposes the subject routing for schedulers and tests.
func (g *Graph) ShardOf(s dict.ID) int { return g.shardFor(s) }

// Add encodes and stores one triple. Safe for concurrent use.
func (g *Graph) Add(s, p, o dict.Term) {
	sid := g.Dict.Encode(s)
	pid := g.Dict.Encode(p)
	oid := g.Dict.Encode(o)
	g.AddEncoded(triple.Triple{S: sid, P: pid, O: oid})
}

// AddEncoded stores an already-encoded triple. Safe for concurrent use.
func (g *Graph) AddEncoded(t triple.Triple) {
	sh := g.shardFor(t.S)
	g.mu[sh].Lock()
	g.shards[sh].Add(t)
	g.mu[sh].Unlock()
}

// Insert adds a triple to a sealed graph (the update path of the
// query/update endpoint). Returns false for duplicates.
func (g *Graph) Insert(s, p, o dict.Term) bool {
	t := triple.Triple{S: g.Dict.Encode(s), P: g.Dict.Encode(p), O: g.Dict.Encode(o)}
	sh := g.shardFor(t.S)
	g.mu[sh].Lock()
	defer g.mu[sh].Unlock()
	return g.shards[sh].Insert(t)
}

// Delete removes a triple from a sealed graph, reporting whether it
// existed. Terms never seen by the dictionary cannot match.
func (g *Graph) Delete(s, p, o dict.Term) bool {
	sid, ok := g.Dict.Lookup(s)
	if !ok {
		return false
	}
	pid, ok := g.Dict.Lookup(p)
	if !ok {
		return false
	}
	oid, ok := g.Dict.Lookup(o)
	if !ok {
		return false
	}
	t := triple.Triple{S: sid, P: pid, O: oid}
	sh := g.shardFor(t.S)
	g.mu[sh].Lock()
	defer g.mu[sh].Unlock()
	return g.shards[sh].Delete(t)
}

// Seal finalizes every shard for querying.
func (g *Graph) Seal() {
	for _, sh := range g.shards {
		sh.Seal()
	}
}

// Len returns the total triple count across shards.
func (g *Graph) Len() int {
	n := 0
	for _, sh := range g.shards {
		n += sh.Len()
	}
	return n
}

// PredicateStats merges per-shard predicate counts; used by the query
// planner.
func (g *Graph) PredicateStats() map[dict.ID]int {
	out := map[dict.ID]int{}
	for _, sh := range g.shards {
		for p, n := range sh.PredicateStats() {
			out[p] += n
		}
	}
	return out
}

// LoadNTriples bulk-loads N-Triples text ("<s> <p> <o> ." per line,
// with literal and blank-node objects supported). It returns the
// number of triples loaded. Malformed lines abort the load.
func (g *Graph) LoadNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseNTLine(line)
		if err != nil {
			return n, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
		g.Add(s, p, o)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("kg: %w", err)
	}
	return n, nil
}

// parseNTLine parses one N-Triples statement.
func parseNTLine(line string) (s, p, o dict.Term, err error) {
	rest := line
	s, rest, err = parseNTTerm(rest)
	if err != nil {
		return
	}
	if s.Kind == dict.Literal {
		err = fmt.Errorf("literal subject")
		return
	}
	p, rest, err = parseNTTerm(rest)
	if err != nil {
		return
	}
	if p.Kind != dict.IRI {
		err = fmt.Errorf("non-IRI predicate")
		return
	}
	o, rest, err = parseNTTerm(rest)
	if err != nil {
		return
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		err = fmt.Errorf("missing terminating '.' (got %q)", rest)
	}
	return
}

// parseNTTerm parses one term off the front of s.
func parseNTTerm(in string) (dict.Term, string, error) {
	in = strings.TrimSpace(in)
	if in == "" {
		return dict.Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	switch in[0] {
	case '<':
		end := strings.IndexByte(in, '>')
		if end < 0 {
			return dict.Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return dict.Term{Kind: dict.IRI, Value: in[1:end]}, in[end+1:], nil
	case '_':
		if len(in) < 2 || in[1] != ':' {
			return dict.Term{}, "", fmt.Errorf("malformed blank node")
		}
		end := 2
		for end < len(in) && in[end] != ' ' && in[end] != '\t' {
			end++
		}
		return dict.Term{Kind: dict.Blank, Value: in[2:end]}, in[end:], nil
	case '"':
		// Scan to the closing unescaped quote.
		var sb strings.Builder
		i := 1
		for i < len(in) {
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					sb.WriteByte(in[i])
				}
				i++
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			i++
		}
		if i >= len(in) {
			return dict.Term{}, "", fmt.Errorf("unterminated literal")
		}
		term := dict.Term{Kind: dict.Literal, Value: sb.String()}
		rest := in[i+1:]
		// Optional datatype or language tag.
		if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return dict.Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			term.Datatype = rest[3:end]
			rest = rest[end+1:]
		} else if strings.HasPrefix(rest, "@") {
			end := 1
			for end < len(rest) && rest[end] != ' ' && rest[end] != '\t' {
				end++
			}
			rest = rest[end:] // language tags are accepted and dropped
		}
		return term, rest, nil
	default:
		return dict.Term{}, "", fmt.Errorf("unexpected term start %q", in[0])
	}
}

// WriteNTriples serializes the whole graph as N-Triples (mainly for
// tests and the CLI export path).
func (g *Graph) WriteNTriples(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, sh := range g.shards {
		var err error
		sh.Match(triple.Pattern{}, func(t triple.Triple) bool {
			s := g.Dict.MustDecode(t.S)
			p := g.Dict.MustDecode(t.P)
			o := g.Dict.MustDecode(t.O)
			_, err = fmt.Fprintf(bw, "%s %s %s .\n", s, p, o)
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
