package kg

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ids/internal/dict"
	"ids/internal/triple"
)

func snapshotGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	src := `
<http://x/s1> <http://x/name> "Ada" .
<http://x/s1> <http://x/age> "36"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s2> <http://x/knows> <http://x/s1> .
_:b0 <http://x/p> "blank" .
`
	if _, err := g.LoadNTriples(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	g.Seal()
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := snapshotGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSnapshot(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumShards() != 4 {
		t.Fatalf("shards = %d", g2.NumShards())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("triples = %d, want %d", g2.Len(), g.Len())
	}
	if g2.Dict.Len() != g.Dict.Len() {
		t.Fatalf("terms = %d, want %d", g2.Dict.Len(), g.Dict.Len())
	}
	// Typed literal survives with datatype.
	if _, ok := g2.Dict.Lookup(dict.Term{Kind: dict.Literal, Value: "36", Datatype: "http://www.w3.org/2001/XMLSchema#integer"}); !ok {
		t.Fatal("typed literal lost")
	}
	// Content equality: every triple of g exists in g2.
	for s := 0; s < g.NumShards(); s++ {
		g.Shard(s).Match(triple.Pattern{}, func(tr triple.Triple) bool {
			// Re-encode via terms because shard routing may differ.
			st := g.Dict.MustDecode(tr.S)
			pt := g.Dict.MustDecode(tr.P)
			ot := g.Dict.MustDecode(tr.O)
			s2, _ := g2.Dict.Lookup(st)
			p2, _ := g2.Dict.Lookup(pt)
			o2, _ := g2.Dict.Lookup(ot)
			if !g2.Shard(g2.ShardOf(s2)).Contains(triple.Triple{S: s2, P: p2, O: o2}) {
				t.Errorf("triple %v %v %v missing after restore", st, pt, ot)
			}
			return true
		})
	}
}

func TestSnapshotRepartition(t *testing.T) {
	g := snapshotGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSnapshot(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumShards() != 8 || g2.Len() != g.Len() {
		t.Fatalf("shards=%d len=%d", g2.NumShards(), g2.Len())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("IDSG\x02"),     // bad version
		[]byte("IDSG\x01\x04"), // truncated
	}
	for i, c := range cases {
		if _, err := LoadSnapshot(bytes.NewReader(c), 0); !errors.Is(err, ErrSnapshot) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Corrupt triple ids.
	g := snapshotGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 0xFF // clobber the last triple id
	if _, err := LoadSnapshot(bytes.NewReader(data), 0); err == nil {
		t.Error("corrupt trailing id accepted")
	}
}

// TestSnapshotEveryPrefixFails a snapshot truncated at any byte
// offset must yield ErrSnapshot — never a panic, a partial graph, or
// an allocation sized by a length field the data can't back.
func TestSnapshotEveryPrefixFails(t *testing.T) {
	g := snapshotGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		_, err := LoadSnapshot(bytes.NewReader(data[:cut]), 0)
		if !errors.Is(err, ErrSnapshot) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrSnapshot", cut, len(data), err)
		}
	}
	if _, err := LoadSnapshot(bytes.NewReader(data), 0); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

// TestSnapshotImplausibleHeaders oversized length fields are rejected
// up front instead of driving allocations.
func TestSnapshotImplausibleHeaders(t *testing.T) {
	huge := append([]byte("IDSG\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // shards = 2^63
	if _, err := LoadSnapshot(bytes.NewReader(huge), 0); !errors.Is(err, ErrSnapshot) {
		t.Errorf("huge shard count: err = %v", err)
	}
	zero := append([]byte("IDSG\x01"), 0x00) // shards = 0
	if _, err := LoadSnapshot(bytes.NewReader(zero), 0); !errors.Is(err, ErrSnapshot) {
		t.Errorf("zero shard count: err = %v", err)
	}
	// One term whose value claims 2^40 bytes.
	lie := append([]byte("IDSG\x01"), 0x04, 0x01, byte(dict.IRI))
	lie = append(lie, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02)
	if _, err := LoadSnapshot(bytes.NewReader(lie), 0); !errors.Is(err, ErrSnapshot) {
		t.Errorf("huge string length: err = %v", err)
	}
	// A bad term kind byte.
	badKind := append([]byte("IDSG\x01"), 0x04, 0x01, 0x09, 0x00, 0x00)
	if _, err := LoadSnapshot(bytes.NewReader(badKind), 0); !errors.Is(err, ErrSnapshot) {
		t.Errorf("bad term kind: err = %v", err)
	}
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	g := New(4)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	for i := 0; i < 10000; i++ {
		g.Add(iri("http://x/s"+itoa(i)), iri("http://x/p"), lit("v"+itoa(i)))
	}
	g.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadSnapshot(&buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
