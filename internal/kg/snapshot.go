package kg

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ids/internal/dict"
	"ids/internal/triple"
)

// Snapshots: a compact binary image of the graph (dictionary + encoded
// triples), the moral equivalent of CGE's database files — a sealed
// graph restores in one pass without re-parsing N-Triples.

// snapshot format:
//
//	magic "IDSG" | version u8 | shards uvarint
//	terms uvarint | per term: kind u8, value string, datatype string
//	triples uvarint | per triple: s,p,o uvarint (dictionary ids)
//
// strings are uvarint length + bytes.

var snapMagic = [4]byte{'I', 'D', 'S', 'G'}

const snapVersion = 1

// ErrSnapshot reports a malformed snapshot.
var ErrSnapshot = errors.New("kg: malformed snapshot")

// Save writes the graph's snapshot. The graph must be sealed.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(snapVersion); err != nil {
		return err
	}
	writeUvarint(bw, uint64(g.nshards))

	nTerms := g.Dict.Len()
	writeUvarint(bw, uint64(nTerms))
	for id := dict.ID(1); int(id) <= nTerms; id++ {
		t, ok := g.Dict.Decode(id)
		if !ok {
			return fmt.Errorf("kg: dictionary hole at id %d", id)
		}
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		writeString(bw, t.Value)
		writeString(bw, t.Datatype)
	}

	writeUvarint(bw, uint64(g.Len()))
	for _, sh := range g.shards {
		var err error
		sh.Match(triple.Pattern{}, func(t triple.Triple) bool {
			writeUvarint(bw, uint64(t.S))
			writeUvarint(bw, uint64(t.P))
			writeUvarint(bw, uint64(t.O))
			return true
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot restores a graph from a snapshot, re-partitioned into
// nshards shards (pass 0 to keep the snapshot's shard count). The
// returned graph is sealed.
func LoadSnapshot(r io.Reader, nshards int) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrSnapshot)
	}
	snapShards, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if snapShards == 0 || snapShards > maxSnapShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrSnapshot, snapShards)
	}
	if nshards <= 0 {
		nshards = int(snapShards)
	}
	g := New(nshards)

	nTerms, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	// Rebuild the dictionary in id order so triple ids stay valid.
	for i := uint64(0); i < nTerms; i++ {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		if dict.Kind(kb) > dict.Blank {
			return nil, fmt.Errorf("%w: unknown term kind %d", ErrSnapshot, kb)
		}
		value, err := readString(br)
		if err != nil {
			return nil, err
		}
		datatype, err := readString(br)
		if err != nil {
			return nil, err
		}
		term := dict.Term{Kind: dict.Kind(kb), Value: value, Datatype: datatype}
		id := g.Dict.Encode(term)
		if uint64(id) != i+1 {
			return nil, fmt.Errorf("%w: non-contiguous dictionary (id %d at position %d)", ErrSnapshot, id, i+1)
		}
	}

	nTriples, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTriples; i++ {
		s, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		p, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		o, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if s == 0 || s > nTerms || p == 0 || p > nTerms || o == 0 || o > nTerms {
			return nil, fmt.Errorf("%w: triple id out of range", ErrSnapshot)
		}
		g.AddEncoded(triple.Triple{S: dict.ID(s), P: dict.ID(p), O: dict.ID(o)})
	}
	g.Seal()
	return g, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return v, nil
}

const (
	maxSnapString = 64 << 20
	maxSnapShards = 1 << 16
	// snapReadChunk bounds how much readString allocates ahead of the
	// bytes actually present, so a corrupt length in a truncated
	// snapshot cannot demand an outsized allocation.
	snapReadChunk = 64 << 10
)

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxSnapString {
		return "", fmt.Errorf("%w: implausible string length %d", ErrSnapshot, n)
	}
	// Read in chunks: allocation grows only as data actually arrives.
	var b []byte
	for n > 0 {
		chunk := n
		if chunk > snapReadChunk {
			chunk = snapReadChunk
		}
		start := len(b)
		b = append(b, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, b[start:]); err != nil {
			return "", fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		n -= chunk
	}
	return string(b), nil
}
