// Package chaos runs seeded randomized fault schedules against a full
// ids.Launcher instance and checks the durability and cache invariants
// the stack promises:
//
//  1. Recovery-equivalence: after a crash at any injected fault point,
//     a restarted instance's state equals the acked update history
//     (plus, at most, the single update that was in flight when the
//     WAL failed — the "indeterminate" update, whose frame may or may
//     not have reached the log).
//  2. No acked-update loss: every update the server acknowledged is
//     present after recovery.
//  3. No panic: every schedule runs the full launch → fault → crash →
//     recover cycle without crashing the process.
//  4. Cache Gets always succeed: under fabric faults and node loss the
//     global cache still returns authoritative bytes for every object
//     it accepted, via stash fallback.
//
// Every schedule is a pure function of its seed: the fault class, the
// fault's position, the update workload, and the cache op sequence all
// derive from one rand.Source, and the fault.Injector draws torn-write
// lengths from the same seed. A failing seed replays exactly with
// Run(Options{Seed: thatSeed, ...}) — see cmd/ids-bench -chaos-seed.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"ids/internal/cache"
	"ids/internal/fault"
	"ids/internal/ids"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/store"
)

// Options parameterizes one chaos schedule.
type Options struct {
	// Seed determines the entire schedule: fault class and position,
	// workload, and cache op sequence.
	Seed int64
	// Dir is a scratch directory the schedule may fill (data dir, crash
	// copy, stash). Required.
	Dir string
	// Updates is the durable-workload length (default 30).
	Updates int
	// CacheOps is the cache-workload length (default 60).
	CacheOps int
	// Log, when non-nil, receives a step-by-step narration — used by
	// ids-bench -chaos-seed to replay a failing schedule verbosely.
	Log io.Writer
}

// Report is the outcome of one schedule. Violations is empty iff every
// invariant held.
type Report struct {
	Seed  int64  `json:"seed"`
	Class string `json:"class"`

	Updates       int    `json:"updates"`
	Acked         int    `json:"acked"`
	Indeterminate string `json:"indeterminate,omitempty"`
	Degraded      bool   `json:"degraded"`
	DegradedState string `json:"degraded_state,omitempty"`
	Recovered     bool   `json:"recovered"`

	CacheOps    int `json:"cache_ops"`
	CacheFaults int `json:"cache_faults"`

	// FaultEvents are the injector's fired faults with paths reduced to
	// base names, so two runs of the same seed in different directories
	// produce identical logs.
	FaultEvents []string `json:"fault_events"`
	Violations  []string `json:"violations,omitempty"`

	// indeterminateOp is the parsed form of Indeterminate, kept so the
	// equivalence check can replay it without re-parsing the string.
	indeterminateOp *wop
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// faultClass names one schedule family; the seed picks one.
type faultClass struct {
	name string
	// rules derives the armed rules; n is the workload length.
	rules func(rng *rand.Rand, n int) []fault.Rule
}

var classes = []faultClass{
	{"none", func(rng *rand.Rand, n int) []fault.Rule { return nil }},
	{"wal-write-error", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpWrite, Path: "wal-*.seg", Nth: uint64(1 + rng.Intn(n))}}
	}},
	{"wal-torn-write", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpWrite, Path: "wal-*.seg", Nth: uint64(1 + rng.Intn(n)), Torn: true}}
	}},
	{"wal-fsync-error", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpSync, Path: "wal-*.seg", Nth: uint64(1 + rng.Intn(n))}}
	}},
	{"checkpoint-enospc", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpWrite, Path: "snap-*.tmp", Nth: 1, Err: fault.ErrNoSpace}}
	}},
	{"vecs-checkpoint-enospc", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpWrite, Path: "vecs-*.tmp", Nth: 1, Err: fault.ErrNoSpace}}
	}},
	{"manifest-rename-error", func(rng *rand.Rand, n int) []fault.Rule {
		return []fault.Rule{{Op: fault.OpRename, Path: "MANIFEST", Nth: 1}}
	}},
}

// walFaultClasses fail the append path and must degrade the engine.
var walFaultClasses = map[string]bool{
	"wal-write-error": true,
	"wal-torn-write":  true,
	"wal-fsync-error": true,
}

// compareQueries are the deterministic probes used for
// recovery-equivalence (ORDER BY makes row order canonical).
var compareQueries = []string{
	`SELECT ?s ?o WHERE { ?s <http://x/tag> ?o . } ORDER BY ?s ?o`,
	`SELECT ?s ?d WHERE { ?s <http://x/desc> ?d . } ORDER BY ?d`,
	`SELECT ?s WHERE { ?s <http://x/tag> "tag1" . ?s <http://x/desc> ?d . } ORDER BY ?s`,
}

// wop is one workload operation: a SPARQL update statement or a
// vector upsert (vec non-nil). Both travel through the same WAL, so
// the schedules interleave them freely.
type wop struct {
	update string
	store  string
	key    string
	vec    []float32
}

func (o wop) isVec() bool { return o.vec != nil }

func (o wop) String() string {
	if o.isVec() {
		return fmt.Sprintf("VECTOR UPSERT %s[%s] %v", o.store, o.key, o.vec)
	}
	return o.update
}

// apply runs the op against an engine directly (shadow replay path).
func (o wop) apply(e *ids.Engine) error {
	if o.isVec() {
		_, err := e.VectorUpsert(o.store, o.key, o.vec)
		return err
	}
	_, err := e.Update(o.update)
	return err
}

// send runs the op over HTTP (live workload path).
func (o wop) send(cli *ids.Client) error {
	if o.isVec() {
		_, err := cli.VectorUpsert(o.store, o.key, o.vec)
		return err
	}
	_, err := cli.Update(o.update)
	return err
}

// workload builds the seeded insert/delete/vector-upsert mix (the same
// shape the durability tests use, but drawn from the schedule's own
// rng). Vector components are small dyadic rationals so the JSON round
// trip over HTTP is bit-exact.
func workload(rng *rand.Rand, n int) []wop {
	out := make([]wop, 0, n)
	for i := 0; i < n; i++ {
		subj := fmt.Sprintf("http://x/e%d", rng.Intn(20))
		switch rng.Intn(5) {
		case 0:
			out = append(out, wop{update: fmt.Sprintf(
				`DELETE DATA { <%s> <http://x/tag> "tag%d" . }`, subj, rng.Intn(5))})
		case 1:
			out = append(out, wop{update: fmt.Sprintf(
				`INSERT DATA { <%s> <http://x/desc> "entity %d described with token%d" . }`,
				subj, i, rng.Intn(8))})
		case 2:
			vec := make([]float32, 4)
			for d := range vec {
				vec[d] = float32(rng.Intn(200)-100) / 8
			}
			out = append(out, wop{store: "emb", key: subj, vec: vec})
		default:
			out = append(out, wop{update: fmt.Sprintf(
				`INSERT DATA { <%s> <http://x/tag> "tag%d" . }`, subj, rng.Intn(5))})
		}
	}
	return out
}

// Run executes one seeded schedule and reports which invariants held.
// The returned error is reserved for harness problems (scratch dir
// unusable, shadow engine construction failed); invariant breaches go
// to Report.Violations so a runner can collect them across seeds.
func Run(opts Options) (*Report, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	if opts.Updates <= 0 {
		opts.Updates = 30
	}
	if opts.CacheOps <= 0 {
		opts.CacheOps = 60
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	cls := classes[rng.Intn(len(classes))]
	rep := &Report{Seed: opts.Seed, Class: cls.name, Updates: opts.Updates, CacheOps: opts.CacheOps}
	logf("chaos: seed=%d class=%s updates=%d", opts.Seed, cls.name, opts.Updates)

	inj := fault.NewInjector(opts.Seed)
	inj.Disarm() // launch and first checkpoint run clean
	for _, r := range cls.rules(rng, opts.Updates) {
		i := inj.Add(r)
		logf("chaos: rule %d: op=%s path=%q nth=%d torn=%v err=%v", i, r.Op, r.Path, r.Nth, r.Torn, r.Err)
	}

	topo := mpp.Topology{Nodes: 1, RanksPerNode: 2}
	durDir := filepath.Join(opts.Dir, "data")
	inst, err := ids.Launcher{}.Launch(ids.LaunchConfig{
		Topo: topo,
		Durability: &ids.DurabilityConfig{
			Dir:                durDir,
			FS:                 fault.NewFS(inj),
			CheckpointInterval: -1,
			CheckpointEvery:    -1,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: launch: %w", err)
	}
	defer inst.Teardown()
	cli := inst.Client()

	inj.Arm()
	acked := driveWorkload(rep, cli, rng, opts.Updates, logf)
	if walFaultClasses[cls.name] && (inj.Fired(fault.OpWrite) || inj.Fired(fault.OpSync)) {
		if !rep.Degraded {
			rep.violate("WAL fault fired but engine never degraded")
		}
	}
	if rep.Degraded {
		checkDegradedSurface(rep, cli, logf)
	}
	inj.Disarm()
	for _, e := range inj.Events() {
		rep.FaultEvents = append(rep.FaultEvents,
			fmt.Sprintf("#%d %s %s rule=%d torn=%d", e.Seq, e.Op, filepath.Base(e.Path), e.Rule, e.TornBytes))
		logf("chaos: fault fired: %s", e)
	}
	rep.Acked = len(acked)
	logf("chaos: acked=%d indeterminate=%q degraded=%v", len(acked), rep.Indeterminate, rep.Degraded)

	// Crash: copy the data directory while the instance still holds it
	// (a clean Teardown would fold the log into a final checkpoint and
	// hide recovery bugs), then tear down and recover from the copy.
	crashDir := filepath.Join(opts.Dir, "crash")
	if err := copyTree(durDir, crashDir); err != nil {
		return rep, fmt.Errorf("chaos: crash copy: %w", err)
	}
	_ = inst.Teardown() // degraded teardown may error; the copy is the crash image

	rec, err := ids.Launcher{}.Launch(ids.LaunchConfig{
		Topo: topo,
		Durability: &ids.DurabilityConfig{
			Dir:                crashDir,
			CheckpointInterval: -1,
			CheckpointEvery:    -1,
		},
	})
	if err != nil {
		rep.violate("recovery failed: %v", err)
		return rep, nil
	}
	defer rec.Teardown()
	rep.Recovered = true
	if ok, state := rec.Client().Ready(); !ok {
		rep.violate("recovered instance not ready: %q", state)
	}
	checkEquivalence(rep, rec.Engine, topo, acked, logf)

	runCachePhase(rep, rng, opts, logf)
	return rep, nil
}

// driveWorkload applies the seeded updates over HTTP, interleaving
// queries (which must always succeed) and checkpoints (whose failures
// are tolerated — that is what the checkpoint fault classes exercise).
// It returns the acked updates in order and fills the Report's
// degraded/indeterminate fields.
func driveWorkload(rep *Report, cli *ids.Client, rng *rand.Rand, n int, logf func(string, ...any)) []wop {
	var acked []wop
	var indeterminate *wop
	for i, u := range workload(rng, n) {
		if i > 0 && i%7 == 0 {
			if _, err := cli.Query(compareQueries[0]); err != nil {
				rep.violate("query failed mid-workload (op %d): %v", i, err)
			}
		}
		if i > 0 && i%11 == 0 {
			if _, err := cli.Checkpoint(); err != nil {
				logf("chaos: checkpoint at op %d failed (tolerated): %v", i, err)
			}
		}
		err := u.send(cli)
		switch {
		case err == nil:
			if rep.Degraded {
				rep.violate("update acked while degraded (op %d)", i)
			}
			acked = append(acked, u)
		case !rep.Degraded:
			// First failure: the WAL fault hit this update. Its frame
			// may be torn away or fully durable — either way the engine
			// must now be read-only degraded and the update is the one
			// allowed indeterminate.
			rep.Degraded = true
			u := u
			indeterminate = &u
			rep.Indeterminate = u.String()
			logf("chaos: update %d failed, engine degrading: %v", i, err)
		default:
			logf("chaos: update %d rejected while degraded: %v", i, err)
		}
	}
	rep.indeterminateOp = indeterminate
	return acked
}

// checkDegradedSurface asserts the degraded mode is observable the way
// operators see it: /readyz flips 503 with a degraded reason, /metrics
// exports ids_degraded 1, and reads still work.
func checkDegradedSurface(rep *Report, cli *ids.Client, logf func(string, ...any)) {
	ok, state := cli.Ready()
	rep.DegradedState = state
	if ok {
		rep.violate("engine degraded but /readyz still 200 (%q)", state)
	} else if !strings.Contains(state, "degraded") {
		rep.violate("/readyz 503 but body lacks degraded reason: %q", state)
	}
	if _, err := cli.Query(compareQueries[0]); err != nil {
		rep.violate("degraded engine refused a read: %v", err)
	}
	if text, err := cli.MetricsText(); err != nil {
		rep.violate("degraded /metrics unreachable: %v", err)
	} else if !strings.Contains(text, "ids_degraded 1") {
		rep.violate("/metrics lacks ids_degraded 1 while degraded")
	}
	logf("chaos: degraded surface verified: readyz=%q", state)
}

// checkEquivalence compares the recovered engine against a shadow
// engine replaying exactly the acked updates; on mismatch it retries
// with the indeterminate update appended (an fsync-failed frame is
// durable on disk even though the client saw an error).
func checkEquivalence(rep *Report, recovered *ids.Engine, topo mpp.Topology, acked []wop, logf func(string, ...any)) {
	shadow, err := shadowEngine(topo, acked)
	if err != nil {
		rep.violate("shadow engine: %v", err)
		return
	}
	if diff := engineDiff(recovered, shadow); diff != "" {
		if rep.indeterminateOp == nil {
			rep.violate("recovery-equivalence: %s", diff)
			return
		}
		if err := rep.indeterminateOp.apply(shadow); err != nil {
			rep.violate("shadow replay of indeterminate update: %v", err)
			return
		}
		if diff2 := engineDiff(recovered, shadow); diff2 != "" {
			rep.violate("recovery-equivalence (with and without indeterminate): %s", diff2)
			return
		}
		logf("chaos: recovered state includes the indeterminate update (durable despite error)")
	}
	logf("chaos: recovery-equivalence holds over %d acked updates", len(acked))
}

// shadowEngine replays ops into a fresh non-durable engine.
func shadowEngine(topo mpp.Topology, ops []wop) (*ids.Engine, error) {
	g := kg.New(topo.Size())
	g.Seal()
	e, err := ids.NewEngine(g, topo)
	if err != nil {
		return nil, err
	}
	for _, o := range ops {
		if err := o.apply(e); err != nil {
			return nil, fmt.Errorf("replaying %q: %w", o, err)
		}
	}
	return e, nil
}

// engineDiff runs the deterministic probes on both engines and returns
// a description of the first divergence ("" when equivalent).
func engineDiff(a, b *ids.Engine) string {
	for _, q := range compareQueries {
		ra, err := a.Query(q)
		if err != nil {
			return fmt.Sprintf("recovered engine query %q: %v", q, err)
		}
		rb, err := b.Query(q)
		if err != nil {
			return fmt.Sprintf("shadow engine query %q: %v", q, err)
		}
		if !reflect.DeepEqual(a.Strings(ra), b.Strings(rb)) {
			return fmt.Sprintf("query %q: recovered %d rows, shadow %d rows (contents differ)",
				q, len(ra.Rows), len(rb.Rows))
		}
	}
	// Vector probes: exact brute-force top-k anchored at every workload
	// key. Search never consults the approximate index, so identical
	// stores return identical (hits, error) pairs — the error matters
	// because store "emb" (or a key) may legitimately not exist when no
	// vector op was acked, and that too must match.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("http://x/e%d", i)
		ha, ea := a.VectorSearch("emb", key, 5)
		hb, eb := b.VectorSearch("emb", key, 5)
		if fmt.Sprint(ea) != fmt.Sprint(eb) {
			return fmt.Sprintf("vector search %q: recovered err %v, shadow err %v", key, ea, eb)
		}
		if !reflect.DeepEqual(ha, hb) {
			return fmt.Sprintf("vector search %q: recovered %v, shadow %v", key, ha, hb)
		}
	}
	return ""
}

// runCachePhase drives a seeded Put/Get workload against the global
// cache while fabric faults and node losses fire, asserting invariant
// 4: every Get of an accepted object returns the authoritative bytes.
func runCachePhase(rep *Report, rng *rand.Rand, opts Options, logf func(string, ...any)) {
	st, err := store.Open(filepath.Join(opts.Dir, "stash"))
	if err != nil {
		rep.violate("cache phase: stash open: %v", err)
		return
	}
	cfg := cache.DefaultConfig()
	cfg.Nodes = 2
	cfg.DRAMPerNode = 2 << 10 // tiny tiers so spills, evictions and
	cfg.SSDPerNode = 4 << 10  // stash fallback all happen in 60 ops
	c, err := cache.New(cfg, st)
	if err != nil {
		rep.violate("cache phase: new cache: %v", err)
		return
	}
	// Both hooks draw from the schedule rng; the phase is
	// single-goroutine so the draw order is deterministic.
	c.Fabric().SetFaultHook(func(op, key string) error {
		if rng.Float64() < 0.08 {
			rep.CacheFaults++
			return fault.ErrInjected
		}
		return nil
	})
	c.SetFaultHook(func(op, name string) int {
		if rng.Float64() < 0.10 {
			rep.CacheFaults++
			return rng.Intn(cfg.Nodes)
		}
		return -1
	})

	written := map[string][]byte{}
	var names []string // deterministic Get targets (map order is not)
	for i := 0; i < opts.CacheOps; i++ {
		r := rng.Intn(10)
		switch {
		case r < 4 || len(names) == 0:
			name := fmt.Sprintf("obj%d", rng.Intn(12))
			data := seededPayload(rng, name, i)
			if err := c.Put(nil, name, data, rng.Intn(cfg.Nodes)); err != nil {
				rep.violate("cache Put(%s) failed (op %d): %v", name, i, err)
				continue
			}
			if _, ok := written[name]; !ok {
				names = append(names, name)
			}
			written[name] = data
		case r == 9:
			_ = c.RecoverNode(rng.Intn(cfg.Nodes))
		default:
			name := names[rng.Intn(len(names))]
			got, err := c.Get(nil, name, rng.Intn(cfg.Nodes))
			if err != nil {
				rep.violate("cache Get(%s) failed (op %d): %v", name, i, err)
				continue
			}
			if !bytes.Equal(got, written[name]) {
				rep.violate("cache Get(%s) returned wrong bytes (op %d): got %d want %d",
					name, i, len(got), len(written[name]))
			}
		}
	}
	s := c.Stats()
	logf("chaos: cache phase: %d ops, %d injected faults, placement_errors=%d spills=%d evictions=%d stash_hits=%d",
		opts.CacheOps, rep.CacheFaults, s.PlacementErrors, s.Spills, s.Evictions, s.StashHits)
}

// seededPayload builds a recognizable deterministic payload big enough
// to stress the tiny tiers.
func seededPayload(rng *rand.Rand, name string, i int) []byte {
	unit := fmt.Sprintf("payload-%s-%d|", name, i)
	n := 600 + rng.Intn(600)
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(unit)
	}
	return b.Bytes()[:n]
}

// copyTree copies a flat directory (the durable data dir has no
// subdirectories), simulating a crash image.
func copyTree(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
