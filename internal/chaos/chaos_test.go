package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"ids/internal/fault"
	"ids/internal/ids"
	"ids/internal/mpp"
)

// scheduleCount honors CHAOS_SCHEDULES (CI sets 50); the default keeps
// local `go test` fast while still covering every fault class.
func scheduleCount(t *testing.T) int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return 12
}

// TestChaosSchedules runs N seeded randomized fault schedules, each a
// full launch → fault → crash → recover cycle plus a faulty cache
// workload, and fails on any invariant violation. A failing seed
// reproduces with `ids-bench -chaos-seed <seed>`.
func TestChaosSchedules(t *testing.T) {
	n := scheduleCount(t)
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Options{Seed: seed, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			if !rep.Ok() {
				t.Fatalf("seed %d (class %s) violated invariants:\n  %s\nfault events:\n  %s",
					seed, rep.Class,
					strings.Join(rep.Violations, "\n  "),
					strings.Join(rep.FaultEvents, "\n  "))
			}
		})
	}
}

// TestChaosDeterministicReplay proves the reproduction story: the same
// seed yields the same fault class, the same fired faults (down to the
// torn-write prefix length), and the same acked count — so a seed from
// a CI failure replays the failure exactly.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Options{Seed: 5, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Class != b.Class {
		t.Fatalf("class diverged: %q vs %q", a.Class, b.Class)
	}
	if a.Acked != b.Acked || a.Degraded != b.Degraded || a.Indeterminate != b.Indeterminate {
		t.Fatalf("outcome diverged: %+v vs %+v", a, b)
	}
	if fmt.Sprint(a.FaultEvents) != fmt.Sprint(b.FaultEvents) {
		t.Fatalf("fault events diverged:\n  %v\n  %v", a.FaultEvents, b.FaultEvents)
	}
	if a.CacheFaults != b.CacheFaults {
		t.Fatalf("cache faults diverged: %d vs %d", a.CacheFaults, b.CacheFaults)
	}
}

// TestWALFsyncFaultFlipsReadyz is the acceptance criterion spelled out
// deterministically: a WAL fsync fault fails exactly one update, flips
// /readyz to 503 "degraded", exports ids_degraded 1, keeps reads
// working, and the acked update survives crash recovery.
func TestWALFsyncFaultFlipsReadyz(t *testing.T) {
	inj := fault.NewInjector(1)
	inj.Disarm()
	inj.Add(fault.Rule{Op: fault.OpSync, Path: "wal-*.seg", Nth: 2})

	topo := mpp.Topology{Nodes: 1, RanksPerNode: 2}
	dir := t.TempDir()
	inst, err := ids.Launcher{}.Launch(ids.LaunchConfig{
		Topo: topo,
		Durability: &ids.DurabilityConfig{
			Dir:                dir,
			FS:                 fault.NewFS(inj),
			CheckpointInterval: -1,
			CheckpointEvery:    -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Teardown()
	cli := inst.Client()
	inj.Arm()

	if _, err := cli.Update(`INSERT DATA { <http://x/a> <http://x/tag> "ok" . }`); err != nil {
		t.Fatalf("first update should succeed: %v", err)
	}
	if _, err := cli.Update(`INSERT DATA { <http://x/b> <http://x/tag> "doomed" . }`); err == nil {
		t.Fatal("second update should fail on the injected fsync error")
	}

	if reason, degraded := inst.Engine.Degraded(); !degraded {
		t.Fatal("engine should be degraded after the WAL fsync fault")
	} else if !strings.Contains(reason, "wal") {
		t.Fatalf("degraded reason should mention the WAL, got %q", reason)
	}
	if ok, state := cli.Ready(); ok {
		t.Fatalf("/readyz should be 503 while degraded, state=%q", state)
	} else if !strings.Contains(state, "degraded") {
		t.Fatalf("/readyz body should carry the degraded reason, got %q", state)
	}
	q, err := cli.Query(`SELECT ?o WHERE { <http://x/a> <http://x/tag> ?o . }`)
	if err != nil {
		t.Fatalf("reads must keep working while degraded: %v", err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != `"ok"` {
		t.Fatalf("unexpected read result while degraded: %+v", q.Rows)
	}
	if _, err := cli.Update(`INSERT DATA { <http://x/c> <http://x/tag> "rejected" . }`); err == nil {
		t.Fatal("updates must be rejected while degraded")
	}
	text, err := cli.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "ids_degraded 1") {
		t.Fatal("/metrics should export ids_degraded 1 while degraded")
	}

	// Crash-recover: the acked update must survive; the engine comes
	// back healthy (degradation is a property of the failed process,
	// not the data).
	inj.Disarm()
	_ = inst.Teardown()
	rec, err := ids.Launcher{}.Launch(ids.LaunchConfig{
		Topo: topo,
		Durability: &ids.DurabilityConfig{
			Dir:                dir,
			CheckpointInterval: -1,
			CheckpointEvery:    -1,
		},
	})
	if err != nil {
		t.Fatalf("recovery after degraded crash: %v", err)
	}
	defer rec.Teardown()
	if _, degraded := rec.Engine.Degraded(); degraded {
		t.Fatal("recovered engine must not start degraded")
	}
	res, err := rec.Engine.Query(`SELECT ?o WHERE { <http://x/a> <http://x/tag> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("acked update lost across recovery: %d rows", len(res.Rows))
	}
}
