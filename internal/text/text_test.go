package text

import (
	"testing"

	"ids/internal/dict"
	"ids/internal/kg"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Adenosine receptor A2a, G-protein coupled!")
	want := []string{"adenosine", "receptor", "a2a", "g", "protein", "coupled"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("!!!")) != 0 {
		t.Fatal("empty input should yield no tokens")
	}
}

func buildTextGraph(t *testing.T) (*kg.Graph, map[string]dict.ID) {
	t.Helper()
	g := kg.New(2)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	docs := map[string]string{
		"http://x/p1": "adenosine receptor A2a antagonist binding",
		"http://x/p2": "dopamine receptor agonist",
		"http://x/p3": "adenosine deaminase enzyme",
		"http://x/p4": "unrelated kinase",
	}
	ids := map[string]dict.ID{}
	for s, txt := range docs {
		g.Add(iri(s), iri("http://x/desc"), lit(txt))
		g.Add(iri(s), iri("http://x/other"), iri("http://x/thing")) // non-literal ignored
	}
	g.Seal()
	for s := range docs {
		id, ok := g.Dict.LookupIRI(s)
		if !ok {
			t.Fatalf("subject %s missing", s)
		}
		ids[s] = id
	}
	return g, ids
}

func TestSearchRanking(t *testing.T) {
	g, ids := buildTextGraph(t)
	idx := BuildIndex(g, nil)
	if idx.Docs() != 4 {
		t.Fatalf("docs = %d", idx.Docs())
	}
	hits := Hits(idx.Search("adenosine receptor", 0))
	if len(hits) != 3 { // p1 (both terms), p2, p3 (one each)
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Subject != ids["http://x/p1"] {
		t.Fatalf("top hit should match both tokens: %v", hits)
	}
	// Limit works.
	if got := idx.Search("adenosine receptor", 1); len(got) != 1 {
		t.Fatalf("limited hits = %v", got)
	}
	// Unknown term yields nothing.
	if got := idx.Search("zebrafish", 0); len(got) != 0 {
		t.Fatalf("unknown term hits = %v", got)
	}
}

// Hits is an identity helper keeping the test readable.
func Hits(h []Hit) []Hit { return h }

func TestContainsANDSemantics(t *testing.T) {
	g, ids := buildTextGraph(t)
	idx := BuildIndex(g, nil)
	p1 := ids["http://x/p1"]
	if !idx.Contains(p1, "adenosine binding") {
		t.Fatal("AND query over present tokens failed")
	}
	if idx.Contains(p1, "adenosine dopamine") {
		t.Fatal("AND query with absent token matched")
	}
	if !idx.Contains(p1, "") {
		t.Fatal("empty query should match")
	}
	if idx.Contains(999999, "adenosine") {
		t.Fatal("unknown subject matched")
	}
}

func TestPredicateRestriction(t *testing.T) {
	g := kg.New(1)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	g.Add(iri("http://x/a"), iri("http://x/title"), lit("indexed words"))
	g.Add(iri("http://x/a"), iri("http://x/secret"), lit("hidden words"))
	g.Seal()
	titleP, _ := g.Dict.LookupIRI("http://x/title")
	idx := BuildIndex(g, []dict.ID{titleP})
	if len(idx.Search("indexed", 0)) != 1 {
		t.Fatal("restricted predicate not indexed")
	}
	if len(idx.Search("hidden", 0)) != 0 {
		t.Fatal("excluded predicate leaked into index")
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	g := kg.New(1)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	g.Add(iri("http://x/b"), iri("http://x/d"), lit("same text"))
	g.Add(iri("http://x/a"), iri("http://x/d"), lit("same text"))
	g.Seal()
	idx := BuildIndex(g, nil)
	h1 := idx.Search("same", 0)
	h2 := idx.Search("same", 0)
	if len(h1) != 2 || h1[0].Subject != h2[0].Subject {
		t.Fatalf("tie-break unstable: %v vs %v", h1, h2)
	}
	if h1[0].Subject > h1[1].Subject {
		t.Fatal("ties should order by subject id")
	}
}

func BenchmarkSearch(b *testing.B) {
	g := kg.New(4)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	words := []string{"adenosine", "receptor", "kinase", "binding", "agonist", "protein", "enzyme", "ligand"}
	for i := 0; i < 5000; i++ {
		txt := words[i%8] + " " + words[(i/3)%8] + " " + words[(i/7)%8]
		g.Add(iri("http://x/d"+itoa(i)), iri("http://x/t"), lit(txt))
	}
	g.Seal()
	idx := BuildIndex(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search("adenosine receptor", 10)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
