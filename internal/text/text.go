// Package text implements the keyword-search face of the IDS unified
// query engine (the paper's "keyword search, set-theoretic operations,
// and linear-algebraic methods"): an inverted index over the graph's
// literal terms with TF-IDF ranking, exposed both as a direct API and
// as a FILTER UDF.
package text

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"ids/internal/dict"
	"ids/internal/kg"
	"ids/internal/triple"
)

// Tokenize lowercases and splits on non-alphanumeric runes, dropping
// empty tokens.
func Tokenize(s string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

type posting struct {
	doc dict.ID // the subject owning the literal
	tf  int
}

// Index is an inverted index from token to subjects whose literals
// contain it. Build once over a sealed graph; reads are concurrent-
// safe afterwards.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	docLen   map[dict.ID]int
	docs     int
}

// BuildIndex indexes every (subject, predicate, literal) triple of the
// graph. Pass predicates to restrict indexing to specific properties
// (nil indexes all literals).
func BuildIndex(g *kg.Graph, predicates []dict.ID) *Index {
	allowed := map[dict.ID]bool{}
	for _, p := range predicates {
		allowed[p] = true
	}
	idx := &Index{postings: map[string][]posting{}, docLen: map[dict.ID]int{}}
	tf := map[dict.ID]map[string]int{}
	for s := 0; s < g.NumShards(); s++ {
		g.Shard(s).Match(triple.Pattern{}, func(t triple.Triple) bool {
			if len(allowed) > 0 && !allowed[t.P] {
				return true
			}
			term, ok := g.Dict.Decode(t.O)
			if !ok || term.Kind != dict.Literal {
				return true
			}
			toks := Tokenize(term.Value)
			if len(toks) == 0 {
				return true
			}
			m := tf[t.S]
			if m == nil {
				m = map[string]int{}
				tf[t.S] = m
			}
			for _, tok := range toks {
				m[tok]++
			}
			idx.docLen[t.S] += len(toks)
			return true
		})
	}
	idx.docs = len(tf)
	for doc, m := range tf {
		for tok, n := range m {
			idx.postings[tok] = append(idx.postings[tok], posting{doc: doc, tf: n})
		}
	}
	// Deterministic posting order.
	for tok := range idx.postings {
		ps := idx.postings[tok]
		sort.Slice(ps, func(i, j int) bool { return ps[i].doc < ps[j].doc })
	}
	return idx
}

// Docs returns the number of indexed subjects.
func (idx *Index) Docs() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.docs
}

// Terms returns the number of distinct indexed tokens.
func (idx *Index) Terms() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.postings)
}

// Hit is one ranked search result.
type Hit struct {
	Subject dict.ID
	Score   float64
}

// Search ranks subjects by TF-IDF against the query tokens, returning
// at most k hits (k <= 0 means all). Multi-token queries are OR
// semantics with additive scores.
func (idx *Index) Search(query string, k int) []Hit {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	scores := map[dict.ID]float64{}
	for _, tok := range Tokenize(query) {
		ps := idx.postings[tok]
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + float64(idx.docs)/float64(len(ps)))
		for _, p := range ps {
			norm := float64(idx.docLen[p.doc])
			if norm == 0 {
				norm = 1
			}
			scores[p.doc] += (float64(p.tf) / norm) * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Subject: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Subject < hits[j].Subject
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Contains reports whether the subject's indexed text contains every
// query token (AND semantics) — the predicate form used by the
// text.match FILTER UDF.
func (idx *Index) Contains(subject dict.ID, query string) bool {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	for _, tok := range Tokenize(query) {
		found := false
		ps := idx.postings[tok]
		i := sort.Search(len(ps), func(i int) bool { return ps[i].doc >= subject })
		if i < len(ps) && ps[i].doc == subject {
			found = true
		}
		if !found {
			return false
		}
	}
	return true
}
