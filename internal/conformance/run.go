package conformance

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ids/internal/ids"
	"ids/internal/mpp"
	"ids/internal/sparql"
)

// Taxonomy buckets. Unsupported features use the compound form
// "unsupported-feature/<kw>" so the report separates, say, MINUS from
// property paths. Classification is structural — errors.As on
// *sparql.Error, errors.Is on mpp.ErrPanic — never message matching.
const (
	BucketOK          = "ok"
	BucketParseError  = "parse-error"
	BucketPlanError   = "plan-error"
	BucketWrongAnswer = "wrong-answer"
	BucketCrash       = "crash"

	unsupportedPrefix = "unsupported-feature/"
)

// Outcome is the classified result of one query.
type Outcome struct {
	Query    Query  `json:"query"`
	Bucket   string `json:"bucket"`
	Priority string `json:"priority,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// priorityFor ranks an outcome for the burn-down list. Crashes and
// engine divergence are P0 regardless of what was expected; any other
// query landing outside its expected bucket is P1 (the harness or the
// engine is wrong about the dialect); expected rejections are P3
// book-keeping.
func priorityFor(expect, bucket string) string {
	switch {
	case bucket == BucketCrash || bucket == BucketWrongAnswer:
		return "P0"
	case bucket != expect:
		return "P1"
	case bucket == BucketOK:
		return ""
	default:
		return "P3"
	}
}

// Run executes one query through parse → plan → execute on both
// engines and buckets the outcome. A panic anywhere in the pipeline —
// including one recovered into an mpp rank error — is a crash, never
// a test failure, so the sweep keeps going and reports totals.
func (w *World) Run(q Query) (o Outcome) {
	o = Outcome{Query: q}
	defer func() {
		if rec := recover(); rec != nil {
			o.Bucket = BucketCrash
			o.Detail = fmt.Sprintf("panic: %v", rec)
		}
		o.Priority = priorityFor(q.Expect, o.Bucket)
	}()

	if _, err := sparql.Parse(q.Text); err != nil {
		var se *sparql.Error
		if errors.As(err, &se) && se.Code == sparql.ErrUnsupported {
			o.Bucket = unsupportedPrefix + se.Feature
		} else {
			o.Bucket = BucketParseError
		}
		o.Detail = err.Error()
		return o
	}

	rres, rerr := w.Row.Query(q.Text)
	cres, cerr := w.Col.Query(q.Text)
	if errors.Is(rerr, mpp.ErrPanic) || errors.Is(cerr, mpp.ErrPanic) {
		o.Bucket = BucketCrash
		o.Detail = fmt.Sprintf("row: %v; col: %v", rerr, cerr)
		return o
	}
	if (rerr == nil) != (cerr == nil) {
		o.Bucket = BucketWrongAnswer
		o.Detail = fmt.Sprintf("error divergence — row: %v; col: %v", rerr, cerr)
		return o
	}
	if rerr != nil {
		// Parsed, but rejected downstream of the front end (planner
		// validation, KNN space checks, ...): the plan-error bucket.
		o.Bucket = BucketPlanError
		o.Detail = rerr.Error()
		return o
	}

	if diff := diffResults(w.Row, rres, w.Col, cres); diff != "" {
		o.Bucket = BucketWrongAnswer
		o.Detail = diff
		return o
	}
	o.Bucket = BucketOK
	return o
}

// diffResults compares the two engines' results as sorted row sets
// (SPARQL imposes no order beyond ORDER BY, and the generator makes
// every LIMIT window total-ordered). Empty string means identical.
func diffResults(rowE *ids.Engine, rres *ids.Result, colE *ids.Engine, cres *ids.Result) string {
	if strings.Join(rres.Vars, ",") != strings.Join(cres.Vars, ",") {
		return fmt.Sprintf("header divergence — row %v, col %v", rres.Vars, cres.Vars)
	}
	rs, cs := renderSorted(rowE, rres), renderSorted(colE, cres)
	if len(rs) != len(cs) {
		return fmt.Sprintf("row-count divergence — row %d, col %d", len(rs), len(cs))
	}
	for i := range rs {
		if rs[i] != cs[i] {
			return fmt.Sprintf("row divergence at sorted index %d — row %q, col %q", i, rs[i], cs[i])
		}
	}
	return ""
}

func renderSorted(e *ids.Engine, res *ids.Result) []string {
	rows := e.Strings(res)
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(out)
	return out
}

// RunAll sweeps the corpus and folds the outcomes into a report. The
// seed is recorded in the report so the run is reproducible from the
// markdown header alone.
func (w *World) RunAll(seed int64, qs []Query) *Report {
	rep := newReport(w.Ranks)
	rep.Seed = seed
	for _, q := range qs {
		rep.add(w.Run(q))
	}
	rep.finish()
	return rep
}
