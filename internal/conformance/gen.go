package conformance

import (
	"fmt"
	"math/rand"
	"strings"
)

// Query is one generated conformance case: the text, the generator
// category it came from, and the taxonomy bucket the harness expects
// it to land in. Categories are homogeneous — every query in a
// category shares one expectation — which is what makes the
// per-category success-rate table meaningful.
type Query struct {
	ID       int    `json:"id"`
	Category string `json:"category"`
	Text     string `json:"text"`
	// Expect is "ok", "unsupported-feature/<kw>" or "parse-error".
	Expect string `json:"expect"`
}

// Generate emits n queries from the given seed. Same seed, same
// corpus — byte for byte — so CI and a developer's laptop argue about
// the same queries.
func Generate(seed int64, n int) []Query {
	r := rand.New(rand.NewSource(seed))
	total := 0
	for _, c := range categories {
		total += c.weight
	}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		roll := r.Intn(total)
		for _, c := range categories {
			if roll < c.weight {
				text, expect := c.gen(r)
				out = append(out, Query{ID: i, Category: c.name, Text: text, Expect: expect})
				break
			}
			roll -= c.weight
		}
	}
	return out
}

// Categories returns the generator category names in emission order.
func Categories() []string {
	out := make([]string, len(categories))
	for i, c := range categories {
		out[i] = c.name
	}
	return out
}

type category struct {
	name   string
	weight int
	gen    func(r *rand.Rand) (text, expect string)
}

// ok wraps a generator whose queries must execute identically on both
// engines.
func ok(gen func(r *rand.Rand) string) func(*rand.Rand) (string, string) {
	return func(r *rand.Rand) (string, string) { return gen(r), BucketOK }
}

var categories = []category{
	// Supported features: expect "ok".
	{"basic-scan", 10, ok(genBasicScan)},
	{"join", 10, ok(genJoin)},
	{"filter", 10, ok(genFilter)},
	{"union", 7, ok(genUnion)},
	{"optional", 7, ok(genOptional)},
	{"distinct", 6, ok(genDistinct)},
	{"order-slice", 8, ok(genOrderSlice)},
	{"aggregate", 8, ok(genAggregate)},
	{"similar", 6, ok(genSimilar)},
	{"bind", 9, ok(genBind)},
	{"values", 9, ok(genValues)},
	{"compound", 5, ok(genCompound)},
	// Recognised W3C SPARQL this subset deliberately rejects: expect
	// a stable unsupported-feature tag, never a raw syntax error.
	{"minus", 3, genMinus},
	{"not-exists", 3, genNotExists},
	{"property-path", 3, genPropertyPath},
	{"subquery", 3, genSubquery},
	{"ask", 3, genAsk},
	{"graph-service", 3, genGraphService},
	// Malformed input: expect "parse-error".
	{"malformed", 9, genMalformed},
}

// Vocabulary pickers.

func ent(r *rand.Rand) string { return "<" + EntityIRI(r.Intn(WorldEntities)) + ">" }

func tagLit(r *rand.Rand) string { return fmt.Sprintf("\"tag%d\"", r.Intn(WorldTags)) }

func pred(r *rand.Rand) string {
	ps := []string{PredTag, PredScore, PredDesc, PredLinks, PredAlt}
	return "<" + ps[r.Intn(len(ps))] + ">"
}

func genBasicScan(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf(`SELECT ?s ?o WHERE { ?s %s ?o . }`, pred(r))
	case 1:
		return fmt.Sprintf(`SELECT ?p ?o WHERE { %s ?p ?o . }`, ent(r))
	case 2:
		return fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> %s . }`, PredTag, tagLit(r))
	default:
		return `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`
	}
}

func genJoin(r *rand.Rand) string {
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf(`SELECT ?a ?t WHERE { ?a <%s> ?b . ?b <%s> ?t . }`, PredLinks, PredTag)
	case 1:
		return fmt.Sprintf(`SELECT ?a ?v WHERE { ?a <%s> ?b . ?b <%s> ?c . ?c <%s> ?v . }`,
			PredLinks, PredLinks, PredScore)
	default:
		q := fmt.Sprintf(`SELECT ?s ?t ?v WHERE { ?s <%s> ?t . ?s <%s> ?v . `, PredTag, PredScore)
		if r.Intn(2) == 0 {
			q += fmt.Sprintf(`?s <%s> ?d . `, PredDesc)
		}
		return q + `}`
	}
}

func genFilter(r *rand.Rand) string {
	lo := r.Intn(101)
	hi := lo + 1 + r.Intn(40)
	base := fmt.Sprintf(`?s <%s> ?v . `, PredScore)
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf(`SELECT ?s ?v WHERE { %sFILTER(?v >= %d && ?v < %d) }`, base, lo, hi)
	case 1:
		return fmt.Sprintf(`SELECT ?s WHERE { %sFILTER(?v * 2 > %d || ?v = %d) }`, base, hi, lo)
	case 2:
		return fmt.Sprintf(`SELECT ?s ?t WHERE { ?s <%s> ?t . FILTER(?t != %s) }`, PredTag, tagLit(r))
	default:
		return fmt.Sprintf(`SELECT ?s WHERE { %sFILTER(?v + %d <= %d) }`, base, r.Intn(10), hi)
	}
}

func genUnion(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return fmt.Sprintf(`SELECT ?s ?t WHERE { { ?s <%s> ?t . } UNION { ?s <%s> ?t . } }`,
			PredTag, PredAlt)
	}
	return fmt.Sprintf(`SELECT ?s WHERE { { ?s <%s> %s . } UNION { ?s <%s> %s . } }`,
		PredTag, tagLit(r), PredTag, tagLit(r))
}

func genOptional(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return fmt.Sprintf(`SELECT ?s ?d WHERE { ?s <%s> ?t . OPTIONAL { ?s <%s> ?d . } }`,
			PredTag, PredDesc)
	}
	return fmt.Sprintf(
		`SELECT ?s ?d ?l WHERE { ?s <%s> ?v . OPTIONAL { ?s <%s> ?d . } OPTIONAL { ?s <%s> ?l . } }`,
		PredScore, PredDesc, PredLinks)
}

func genDistinct(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return fmt.Sprintf(`SELECT DISTINCT ?t WHERE { ?s <%s> ?t . } ORDER BY ?t`, PredTag)
	}
	return fmt.Sprintf(`SELECT DISTINCT ?s WHERE { ?s <%s> %s . } ORDER BY ?s`, PredTag, tagLit(r))
}

// genOrderSlice exercises ORDER BY/LIMIT/OFFSET including the edge
// cases (LIMIT 0, OFFSET past the end). The sort key list always
// covers every projected variable, so windows are well-defined under
// ties on both engines.
func genOrderSlice(r *rand.Rand) string {
	dir := ""
	if r.Intn(2) == 0 {
		dir = "DESC"
	}
	key := "?v"
	if dir != "" {
		key = "DESC(?v)"
	}
	q := fmt.Sprintf(`SELECT ?s ?v WHERE { ?s <%s> ?v . } ORDER BY %s ?s`, PredScore, key)
	switch r.Intn(4) {
	case 0:
		q += " LIMIT 0"
	case 1:
		q += fmt.Sprintf(" LIMIT %d", 1+r.Intn(12))
	case 2:
		q += fmt.Sprintf(" LIMIT %d OFFSET %d", 1+r.Intn(12), r.Intn(10))
	default:
		q += fmt.Sprintf(" LIMIT 5 OFFSET %d", 200+r.Intn(100)) // past the end
	}
	return q
}

func genAggregate(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf(`SELECT (COUNT(?s) AS ?n) WHERE { ?s <%s> ?d . }`, PredDesc)
	case 1:
		return fmt.Sprintf(
			`SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s <%s> ?t . } GROUP BY ?t ORDER BY ?t`, PredTag)
	case 2:
		return fmt.Sprintf(
			`SELECT ?t (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s <%s> ?t . ?s <%s> ?v . } GROUP BY ?t ORDER BY ?t`,
			PredTag, PredScore)
	default:
		return fmt.Sprintf(
			`SELECT ?t (AVG(?v) AS ?m) WHERE { ?s <%s> ?t . ?s <%s> ?v . FILTER(?v > %d) } GROUP BY ?t ORDER BY ?t`,
			PredTag, PredScore, r.Intn(60))
	}
}

func genSimilar(r *rand.Rand) string {
	k := 1 + r.Intn(8)
	vec := fmt.Sprintf("[%d %d]", r.Intn(8), r.Intn(6))
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf(`SELECT ?c WHERE { SIMILAR(?c, %s, %d, %q) . }`, vec, k, VecSpace)
	case 1:
		return fmt.Sprintf(`SELECT ?c ?v WHERE { SIMILAR(?c, %s, %d, %q) . ?c <%s> ?v . } ORDER BY ?v`,
			vec, k, VecSpace, PredScore)
	default:
		return fmt.Sprintf(`SELECT ?c WHERE { SIMILAR(?c, %s, %d, %q) . }`, ent(r), k, VecSpace)
	}
}

func genBind(r *rand.Rand) string {
	a, b := 1+r.Intn(5), r.Intn(20)
	switch r.Intn(4) {
	case 0:
		// ?v is a total order and a>0 keeps ?w one too.
		return fmt.Sprintf(`SELECT ?s ?w WHERE { ?s <%s> ?v . BIND(?v * %d + %d AS ?w) } ORDER BY ?w`,
			PredScore, a, b)
	case 1:
		return fmt.Sprintf(`SELECT ?s ?d WHERE { ?s <%s> ?v . BIND(?v - %d AS ?d) FILTER(?d > 0) }`,
			PredScore, 20+r.Intn(60))
	case 2:
		return fmt.Sprintf(`SELECT ?t ?f WHERE { ?s <%s> ?t . BIND(?t = %s AS ?f) }`, PredTag, tagLit(r))
	default:
		return fmt.Sprintf(
			`SELECT ?b (COUNT(?s) AS ?n) WHERE { ?s <%s> ?v . BIND(?v > %d AS ?b) } GROUP BY ?b`,
			PredScore, r.Intn(101))
	}
}

func genValues(r *rand.Rand) string {
	ents := func(n int) string {
		parts := make([]string, n)
		for i := range parts {
			parts[i] = ent(r)
		}
		return strings.Join(parts, " ")
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf(`SELECT ?s ?v WHERE { VALUES ?s { %s } ?s <%s> ?v . }`,
			ents(2+r.Intn(3)), PredScore)
	case 1:
		return fmt.Sprintf(`SELECT ?s ?t WHERE { ?s <%s> ?t . VALUES ?t { %s %s } }`,
			PredTag, tagLit(r), tagLit(r))
	case 2:
		return fmt.Sprintf(
			`SELECT ?s ?t ?v WHERE { VALUES (?s ?t) { (%s %s) (UNDEF %s) } ?s <%s> ?t . ?s <%s> ?v . }`,
			ent(r), tagLit(r), tagLit(r), PredTag, PredScore)
	default:
		// Trailing VALUES after the modifiers, with one term that is
		// not in the dictionary (its rows drop in both engines).
		return fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> %s . } VALUES ?s { %s <http://c/nosuch> }`,
			PredTag, tagLit(r), ents(2))
	}
}

func genCompound(r *rand.Rand) string {
	return fmt.Sprintf(
		`SELECT ?s ?w WHERE { VALUES ?s { %s %s %s } ?s <%s> ?v . OPTIONAL { ?s <%s> ?d . } BIND(?v * %d AS ?w) FILTER(?w >= 0) } ORDER BY ?w ?s`,
		ent(r), ent(r), ent(r), PredScore, PredDesc, 1+r.Intn(4))
}

// Unsupported-feature generators: well-formed W3C SPARQL the parser
// must reject with the exact feature tag.

func genMinus(r *rand.Rand) (string, string) {
	return fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?t . MINUS { ?s <%s> ?d . } }`,
		PredTag, PredDesc), "unsupported-feature/minus"
}

func genNotExists(r *rand.Rand) (string, string) {
	return fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?t . FILTER NOT EXISTS { ?s <%s> ?d . } }`,
		PredTag, PredDesc), "unsupported-feature/not-exists"
}

func genPropertyPath(r *rand.Rand) (string, string) {
	if r.Intn(2) == 0 {
		return fmt.Sprintf(`SELECT ?a ?t WHERE { ?a <%s>/<%s> ?t . }`, PredLinks, PredTag),
			"unsupported-feature/property-path"
	}
	return fmt.Sprintf(`SELECT ?a ?b WHERE { ?a <%s>+ ?b . }`, PredLinks),
		"unsupported-feature/property-path"
}

func genSubquery(r *rand.Rand) (string, string) {
	return fmt.Sprintf(`SELECT ?s WHERE { { SELECT ?s WHERE { ?s <%s> ?t . } } }`, PredTag),
		"unsupported-feature/subquery"
}

func genAsk(r *rand.Rand) (string, string) {
	return fmt.Sprintf(`ASK { ?s <%s> %s . }`, PredTag, tagLit(r)), "unsupported-feature/ask"
}

func genGraphService(r *rand.Rand) (string, string) {
	if r.Intn(2) == 0 {
		return fmt.Sprintf(`SELECT ?s WHERE { GRAPH <http://c/g> { ?s <%s> ?t . } }`, PredTag),
			"unsupported-feature/graph"
	}
	return fmt.Sprintf(`SELECT ?s WHERE { SERVICE <http://c/remote> { ?s <%s> ?t . } }`, PredTag),
		"unsupported-feature/service"
}

// genMalformed emits input that no SPARQL dialect accepts; the parser
// must return a structured syntax error, never panic or mislabel it
// as unsupported.
func genMalformed(r *rand.Rand) (string, string) {
	forms := []string{
		fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?o .`, PredTag),
		fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> "unterminated . }`, PredTag),
		`SELECT ?s WHERE { ?s %% ?o . }`,
		`SELECT WHERE { ?s ?p ?o . }`,
		fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?o . } LIMIT x`, PredTag),
		fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?o . } ORDER ?s`, PredTag),
		fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> ?v . FILTER(?v > ) }`, PredScore),
		`SELECT ?s WHERE { BIND( } `,
		`SELECT ?s WHERE { VALUES ?s { <http://c/e0>`,
		`SELECT ?s WHERE { VALUES (?s ?t) { (<http://c/e0>) } }`,
	}
	return forms[r.Intn(len(forms))], BucketParseError
}
