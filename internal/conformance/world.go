// Package conformance is the SPARQL conformance sweep: a seeded
// generator emits thousands of W3C-style queries over a deterministic
// synthetic knowledge graph, every query runs through parse → plan →
// execute on BOTH engines (row oracle and columnar default), and each
// outcome lands in a stable taxonomy bucket with a priority. The
// harness is the repo's answer to "which SPARQL do we actually speak,
// and how do we fail on the rest": CONFORMANCE.md is regenerated from
// it by `ids-bench -conformance`, and CI gates on the per-category
// success-rate table never regressing.
package conformance

import (
	"fmt"
	"strconv"

	"ids/internal/dict"
	"ids/internal/ids"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/vecstore"
	"ids/internal/vecstore/hnsw"
)

// World vocabulary. The generator only draws terms from this closed
// vocabulary, so every supported-feature query is answerable and every
// divergence between the engines is a real defect, not a data race
// with the generator.
const (
	// WorldEntities is the entity count; scores i*13 mod 101 are
	// pairwise distinct (101 is prime), which keeps ORDER BY ?score a
	// total order — LIMIT windows are then well-defined on both
	// engines regardless of hash-join emission order.
	WorldEntities = 48
	// WorldTags is the tag-literal alphabet size.
	WorldTags = 7

	PredTag   = "http://c/tag"
	PredScore = "http://c/score"
	PredDesc  = "http://c/desc"
	PredLinks = "http://c/links"
	PredAlt   = "http://c/alt"
	// VecSpace is the vector-store name SIMILAR queries reference.
	VecSpace = "fp"
)

// EntityIRI returns the IRI of entity i.
func EntityIRI(i int) string { return fmt.Sprintf("http://c/e%d", i%WorldEntities) }

// WorldGraph builds the deterministic synthetic KG: typed entities
// with literal attributes, a sparse link relation for join chains, a
// partially-duplicated alt-tag family for UNION and DISTINCT, and
// duplicate triples so DISTINCT has real work.
func WorldGraph(shards int) *kg.Graph {
	g := kg.New(shards)
	iri := func(s string) dict.Term { return dict.Term{Kind: dict.IRI, Value: s} }
	lit := func(s string) dict.Term { return dict.Term{Kind: dict.Literal, Value: s} }
	for i := 0; i < WorldEntities; i++ {
		s := iri(EntityIRI(i))
		g.Add(s, iri(PredTag), lit("tag"+strconv.Itoa(i%WorldTags)))
		g.Add(s, iri(PredScore), lit(strconv.Itoa(i*13%101)))
		if i%2 == 0 {
			g.Add(s, iri(PredDesc), lit(fmt.Sprintf("desc-%d", i)))
		}
		if i%3 == 0 {
			g.Add(s, iri(PredLinks), iri(EntityIRI(i+11)))
		}
		if i%4 == 0 {
			g.Add(s, iri(PredAlt), lit("tag"+strconv.Itoa(i%WorldTags)))
		}
	}
	for i := 0; i < 8; i++ {
		g.Add(iri(EntityIRI(i)), iri(PredTag), lit("tag0"))
	}
	g.Seal()
	return g
}

// World is a differential execution harness: the same graph and the
// same vector store behind a row engine (the oracle) and a columnar
// engine (the default production path).
type World struct {
	Ranks int
	Row   *ids.Engine
	Col   *ids.Engine
}

// NewWorld builds the engine pair over a ranks-shard world. The HNSW
// index is seeded, so SIMILAR answers are identical run to run and
// engine to engine (both engines share one store instance).
func NewWorld(ranks int) (*World, error) {
	g := WorldGraph(ranks)
	topo := mpp.Topology{Nodes: 1, RanksPerNode: ranks}
	row, err := ids.NewEngine(g, topo)
	if err != nil {
		return nil, err
	}
	row.Opts.Columnar = false
	col, err := ids.NewEngine(g, topo)
	if err != nil {
		return nil, err
	}
	vs, err := vecstore.New(2, vecstore.L2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < WorldEntities; i++ {
		if err := vs.Add(EntityIRI(i), []float32{float32(i % 8), float32(i / 8)}); err != nil {
			return nil, err
		}
	}
	if err := vs.EnableHNSW(hnsw.Config{M: 4, EfConstruction: 32, Seed: 1}); err != nil {
		return nil, err
	}
	if err := row.AttachVectors(VecSpace, vs); err != nil {
		return nil, err
	}
	if err := col.AttachVectors(VecSpace, vs); err != nil {
		return nil, err
	}
	return &World{Ranks: ranks, Row: row, Col: col}, nil
}
