package conformance

import (
	"testing"

	"ids/internal/sparql"
)

// FuzzConformanceExec drives arbitrary query text through the full
// differential pipeline: whatever the parser accepts must execute
// without panicking and produce identical result sets on both
// engines. FuzzSPARQLParse owns the front end; this target owns
// everything behind it.
func FuzzConformanceExec(f *testing.F) {
	for _, q := range Generate(7, 48) {
		f.Add(q.Text)
	}
	// Hand-picked shapes past generator coverage: empty projection
	// windows, self-joins, null-extending OPTIONAL under BIND.
	for _, q := range []string{
		`SELECT ?s WHERE { ?s <http://c/links> ?s . }`,
		`SELECT ?s ?w WHERE { ?s <http://c/score> ?v . OPTIONAL { ?s <http://c/desc> ?d . } BIND(?v + 1 AS ?w) } ORDER BY ?w LIMIT 3`,
		`SELECT DISTINCT ?t WHERE { { ?s <http://c/tag> ?t . } UNION { ?s <http://c/alt> ?t . } } ORDER BY ?t LIMIT 0`,
	} {
		f.Add(q)
	}
	w, err := NewWorld(2)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			t.Skip("oversized input")
		}
		q, err := sparql.Parse(input)
		if err != nil {
			return // front-end rejections are FuzzSPARQLParse's domain
		}
		// Cap the join explosion an adversarial input can demand of
		// the tiny world graph: each all-wildcard pattern multiplies
		// the intermediate result by the triple count.
		wild := 0
		for _, tp := range q.Patterns() {
			if tp.S.IsVar && tp.P.IsVar && tp.O.IsVar {
				wild++
			}
		}
		if len(q.Patterns()) > 6 || wild > 2 {
			t.Skip("pathological join shape")
		}
		o := w.Run(Query{Text: input, Category: "fuzz", Expect: BucketOK})
		switch o.Bucket {
		case BucketCrash:
			t.Fatalf("crash on %q: %s", input, o.Detail)
		case BucketWrongAnswer:
			t.Fatalf("engine divergence on %q: %s", input, o.Detail)
		}
	})
}
