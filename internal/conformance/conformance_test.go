package conformance

import (
	"strings"
	"testing"
)

// sweepSeed/sweepN: the in-suite subset. CI's race job runs this; the
// full 2000-query sweep lives behind `ids-bench -conformance`.
const (
	sweepSeed = 1
	sweepN    = 500
)

func testWorld(t *testing.T, ranks int) *World {
	t.Helper()
	w, err := NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func dumpFailures(t *testing.T, rep *Report) {
	t.Helper()
	for _, o := range rep.Failures {
		t.Errorf("%s [%s] category=%s expect=%s\n  query: %s\n  detail: %s",
			o.Priority, o.Bucket, o.Query.Category, o.Query.Expect, o.Query.Text, o.Detail)
	}
}

// TestGenerateDeterministic pins the generator contract: same seed,
// same corpus, and every declared category is actually emitted at
// this corpus size.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(sweepSeed, sweepN), Generate(sweepSeed, sweepN)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus not deterministic at query %d:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
	seen := map[string]int{}
	for _, q := range a {
		seen[q.Category]++
	}
	for _, name := range Categories() {
		if seen[name] == 0 {
			t.Errorf("category %q never emitted in %d queries", name, sweepN)
		}
	}
}

// TestConformanceSweep is the differential property test: every query
// the harness expects to succeed must produce identical result sets
// on the row and columnar engines, every rejection must carry its
// stable tag, and nothing may crash. Runs under -race in CI.
func TestConformanceSweep(t *testing.T) {
	w := testWorld(t, 2)
	qs := Generate(sweepSeed, sweepN)
	rep := w.RunAll(sweepSeed, qs)

	if n := rep.P0Count(); n > 0 {
		dumpFailures(t, rep)
		t.Fatalf("%d P0 outcomes (crash=%d wrong-answer=%d)",
			n, rep.Buckets[BucketCrash], rep.Buckets[BucketWrongAnswer])
	}
	for _, cs := range rep.Categories {
		if cs.Pass != cs.Total {
			dumpFailures(t, rep)
			t.Fatalf("category %s: %d/%d queries in expected bucket %q", cs.Name, cs.Pass, cs.Total, cs.Expect)
		}
	}
	// The burn-down proof: BIND and VALUES are differential-verified
	// supported features now, not unsupported tags.
	for _, name := range []string{"bind", "values"} {
		cs, okc := rep.Category(name)
		if !okc || cs.Expect != BucketOK {
			t.Fatalf("category %s must expect %q (got %+v)", name, BucketOK, cs)
		}
	}
}

// TestTaxonomyBucketsDirect pins one hand-written query per bucket so
// the classifier itself is under test, independent of the generator.
func TestTaxonomyBucketsDirect(t *testing.T) {
	w := testWorld(t, 1)
	cases := []struct {
		query  string
		bucket string
		prio   string
	}{
		{`SELECT ?s WHERE { ?s <http://c/tag> "tag0" . }`, BucketOK, ""},
		{`SELECT ?s WHERE { ?s <http://c/tag> ?t . MINUS { ?s ?p ?o . } }`, "unsupported-feature/minus", "P1"},
		{`ASK { ?s ?p ?o . }`, "unsupported-feature/ask", "P1"},
		{`SELECT ?s WHERE { ?s <http://c/tag`, BucketParseError, "P1"},
		// Parses, but the planner rejects the never-bound projection.
		{`SELECT ?ghost WHERE { ?s <http://c/tag> ?t . }`, BucketPlanError, "P1"},
		// Parses, but execution rejects the unknown vector space.
		{`SELECT ?c WHERE { SIMILAR(?c, [0 0], 3, "nope") . }`, BucketPlanError, "P1"},
	}
	for _, tc := range cases {
		o := w.Run(Query{Text: tc.query, Category: "direct", Expect: BucketOK})
		if o.Bucket != tc.bucket {
			t.Errorf("%q: bucket %q (detail %q), want %q", tc.query, o.Bucket, o.Detail, tc.bucket)
		}
		if o.Priority != tc.prio {
			t.Errorf("%q: priority %q, want %q", tc.query, o.Priority, tc.prio)
		}
	}
}

// TestReportMarkdownRoundTrip: the rates CI parses out of the
// committed CONFORMANCE.md are the rates the report computed.
func TestReportMarkdownRoundTrip(t *testing.T) {
	w := testWorld(t, 2)
	rep := w.RunAll(sweepSeed, Generate(sweepSeed, 200))
	md := rep.Markdown()
	rates, err := ParseMarkdownRates(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != len(rep.Categories) {
		t.Fatalf("parsed %d rates, report has %d categories", len(rates), len(rep.Categories))
	}
	for _, cs := range rep.Categories {
		got, okc := rates[cs.Name]
		if !okc {
			t.Fatalf("category %s missing from parsed rates", cs.Name)
		}
		if d := got - cs.Rate(); d > 0.006 || d < -0.006 { // %.2f rounding slack
			t.Fatalf("category %s: parsed rate %.4f, want %.4f", cs.Name, got, cs.Rate())
		}
	}
}

// TestCompareGate proves the regression gate logic both ways: a
// report gates cleanly against its own markdown, and fails against a
// doctored baseline demanding an unattainable rate.
func TestCompareGate(t *testing.T) {
	w := testWorld(t, 2)
	rep := w.RunAll(sweepSeed, Generate(sweepSeed, 200))
	md := rep.Markdown()
	if err := Compare(md, rep); err != nil {
		t.Fatalf("self-compare must pass: %v", err)
	}
	// Inject a regression: the baseline claims a category this run
	// doesn't have, and bumps an existing rate beyond 100%.
	doctored := strings.Replace(md, "| bind |", "| bind-vanished |", 1) +
		"| bind | 1 | ok | 1 | 101.00% |\n"
	err := Compare(doctored, rep)
	if err == nil {
		t.Fatal("doctored baseline must trip the gate")
	}
	for _, want := range []string{"bind-vanished", "regressed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error missing %q: %v", want, err)
		}
	}
	if _, err := ParseMarkdownRates("no table here"); err == nil {
		t.Fatal("empty baseline must be an error, not a silent pass")
	}
}
