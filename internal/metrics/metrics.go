// Package metrics provides the small reporting utilities the
// experiment harness uses: aligned-column tables for regenerating the
// paper's tables, series renderers for its figures, and a streaming
// histogram/summary for cost distributions (e.g. the DTBA variance
// discussion around Fig. 5).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Summary is an order-statistics summary of a sample set.
type Summary struct {
	vals []float64
	// sorted caches the ordered sample between Adds, so quantile
	// queries (Quantile/Min/Max/String call several each) sort once
	// instead of per call.
	sorted []float64
}

// Add appends one observation. Non-finite values are dropped: a NaN
// would poison the sorted cache (sort with NaN comparisons is not a
// total order) and every quantile after it.
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.vals = append(s.vals, v)
	s.sorted = nil
}

// N returns the sample count.
func (s *Summary) N() int { return len(s.vals) }

// Mean returns the sample mean (0 for empty).
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.vals {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-th sample quantile (q in [0,1]), linearly
// interpolated between order statistics; a NaN q returns 0.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.vals) == 0 || math.IsNaN(q) {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64{}, s.vals...)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.Quantile(1) }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.Quantile(0) }

// String renders the summary as one line.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N(), s.Mean(), s.Stddev(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}

// Histogram renders a fixed-width ASCII histogram of the sample.
func (s *Summary) Histogram(bins int, w io.Writer) {
	if len(s.vals) == 0 || bins <= 0 {
		return
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range s.vals {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for b, c := range counts {
		bl := lo + float64(b)*(hi-lo)/float64(bins)
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(w, "%8.3f |%-40s %d\n", bl, bar, c)
	}
}
