package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("n=%d mean=%f", s.N(), s.Mean())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("sd = %f", s.Stddev())
	}
	if s.Quantile(0.5) != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("quantiles: p50=%f min=%f max=%f", s.Quantile(0.5), s.Min(), s.Max())
	}
	if s.Quantile(0.25) != 2 {
		t.Fatalf("p25 = %f", s.Quantile(0.25))
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stddev() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty summary should be zeros")
	}
}

// Low-count quantiles interpolate between order statistics instead of
// snapping to the max, and non-finite inputs never poison the cache.
func TestSummaryQuantileLowCountAndNaN(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 1},
		{0.5, 2.5},   // interpolated median of an even count
		{0.99, 3.97}, // NOT the max: 3 + 0.97*(4-3)
		{1, 4},
		{-1, 1},
		{2, 4},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(math.NaN()); got != 0 || math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	// NaN and ±Inf observations are dropped, keeping every later
	// quantile finite.
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	if s.N() != 4 {
		t.Fatalf("non-finite observations retained: n=%d", s.N())
	}
	for q := 0.0; q <= 1.0; q += 0.1 {
		if v := s.Quantile(q); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Quantile(%.1f) = %v after non-finite adds", q, v)
		}
	}
}

func TestHistogramRenders(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	var sb strings.Builder
	s.Histogram(5, &sb)
	out := sb.String()
	if strings.Count(out, "\n") != 5 {
		t.Fatalf("histogram lines:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
	// Degenerate cases must not panic.
	var empty Summary
	empty.Histogram(5, &sb)
	var constant Summary
	constant.Add(1)
	constant.Histogram(3, &sb)
}

func TestSummaryCacheInvalidation(t *testing.T) {
	// Quantile caches the sorted sample; an Add after a query must
	// invalidate it so later quantiles see the new observation.
	var s Summary
	s.Add(5)
	s.Add(1)
	if s.Max() != 5 {
		t.Fatalf("max = %f", s.Max())
	}
	s.Add(10)
	if s.Max() != 10 {
		t.Fatalf("max after add = %f (stale sort cache?)", s.Max())
	}
	if s.Min() != 1 {
		t.Fatalf("min = %f", s.Min())
	}
	s.Add(0.5)
	if s.Min() != 0.5 {
		t.Fatalf("min after add = %f (stale sort cache?)", s.Min())
	}
}

func BenchmarkSummaryQuantile(b *testing.B) {
	var s Summary
	for i := 0; i < 10000; i++ {
		s.Add(float64(i * 2654435761 % 10007))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.5)
		s.Quantile(0.95)
		s.Quantile(0.99)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(2)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String = %q", s.String())
	}
}
