package dict

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []Term{
		{Kind: IRI, Value: "http://example.org/p1"},
		{Kind: Literal, Value: "hello"},
		{Kind: Literal, Value: "3.14", Datatype: "http://www.w3.org/2001/XMLSchema#double"},
		{Kind: Blank, Value: "b0"},
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] == None {
			t.Fatalf("Encode returned None for %v", tm)
		}
	}
	for i, tm := range terms {
		got, ok := d.Decode(ids[i])
		if !ok || got != tm {
			t.Fatalf("Decode(%d) = %v,%v want %v", ids[i], got, ok, tm)
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestEncodeIsIdempotent(t *testing.T) {
	d := New()
	a := d.EncodeIRI("http://x/a")
	b := d.EncodeIRI("http://x/a")
	if a != b {
		t.Fatalf("same IRI got two ids: %d %d", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	d := New()
	iri := d.EncodeIRI("x")
	lit := d.EncodeLiteral("x")
	blank := d.Encode(Term{Kind: Blank, Value: "x"})
	if iri == lit || iri == blank || lit == blank {
		t.Fatalf("kind collision: iri=%d lit=%d blank=%d", iri, lit, blank)
	}
}

func TestTypedLiteralsDistinct(t *testing.T) {
	d := New()
	plain := d.EncodeLiteral("1")
	typed := d.EncodeTyped("1", "http://www.w3.org/2001/XMLSchema#integer")
	if plain == typed {
		t.Fatal("plain and typed literal collided")
	}
}

func TestLookupWithoutEncode(t *testing.T) {
	d := New()
	if _, ok := d.LookupIRI("http://nope"); ok {
		t.Fatal("Lookup found a term never encoded")
	}
	d.EncodeIRI("http://yes")
	if id, ok := d.LookupIRI("http://yes"); !ok || id == None {
		t.Fatal("Lookup missed an encoded term")
	}
}

func TestDecodeInvalid(t *testing.T) {
	d := New()
	if _, ok := d.Decode(None); ok {
		t.Fatal("Decode(None) succeeded")
	}
	if _, ok := d.Decode(99); ok {
		t.Fatal("Decode out-of-range succeeded")
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecode did not panic on unknown id")
		}
	}()
	New().MustDecode(5)
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Term{Kind: IRI, Value: "http://x/a"}, "<http://x/a>"},
		{Term{Kind: Literal, Value: "hi"}, `"hi"`},
		{Term{Kind: Literal, Value: "1", Datatype: "http://t"}, `"1"^^<http://t>`},
		{Term{Kind: Blank, Value: "n1"}, "_:n1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]ID, perWorker)
			for i := 0; i < perWorker; i++ {
				// Heavy overlap between workers: only 100 distinct terms.
				ids[w][i] = d.EncodeIRI(fmt.Sprintf("http://x/%d", i%100))
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d item %d: id %d != %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
}

// Property: every encoded term decodes to itself, and re-encoding the
// decoded term yields the same ID.
func TestEncodeDecodeProperty(t *testing.T) {
	d := New()
	f := func(value, datatype string, kindSel uint8) bool {
		tm := Term{Kind: Kind(kindSel % 3), Value: value}
		if tm.Kind == Literal {
			tm.Datatype = datatype
		}
		id := d.Encode(tm)
		back, ok := d.Decode(id)
		if !ok || back != tm {
			return false
		}
		return d.Encode(back) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeNew(b *testing.B) {
	d := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.EncodeIRI(fmt.Sprintf("http://bench/%d", i))
	}
}

func BenchmarkEncodeHit(b *testing.B) {
	d := New()
	d.EncodeIRI("http://bench/hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.EncodeIRI("http://bench/hot")
	}
}
