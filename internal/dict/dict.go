// Package dict implements the parallel dictionary encoder at the base
// of the IDS datastore. RDF terms (IRIs, literals, blank nodes) are
// mapped to dense uint64 IDs so that triples, join keys and
// intermediate solutions move through the engine as fixed-width
// integers — the same design the Cray Graph Engine uses to keep its
// in-memory representation compact and its joins hash-friendly.
//
// The dictionary is sharded by term hash so concurrent ingest ranks
// can encode without a global lock.
package dict

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// ID is a dictionary-encoded term identifier. 0 is reserved and never
// assigned ("no term").
type ID uint64

// None is the zero ID, never assigned to a term.
const None ID = 0

// Kind classifies an RDF term.
type Kind uint8

// Term kinds.
const (
	IRI Kind = iota
	Literal
	Blank
)

func (k Kind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Term is a decoded RDF term.
type Term struct {
	Kind Kind
	// Value holds the lexical form: the IRI without angle brackets,
	// the literal's string value, or the blank node label.
	Value string
	// Datatype holds the literal datatype IRI, if any.
	Datatype string
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		if t.Datatype != "" {
			return fmt.Sprintf("%q^^<%s>", t.Value, t.Datatype)
		}
		return fmt.Sprintf("%q", t.Value)
	}
}

// key is the canonical uniqueness key of a term.
func (t Term) key() string {
	switch t.Kind {
	case IRI:
		return "i" + t.Value
	case Blank:
		return "b" + t.Value
	default:
		return "l" + t.Datatype + "\x00" + t.Value
	}
}

const numShards = 64

type shard struct {
	mu  sync.RWMutex
	ids map[string]ID
}

// Dict is a concurrency-safe two-way dictionary between terms and IDs.
type Dict struct {
	shards [numShards]shard

	mu    sync.RWMutex
	terms []Term // terms[id-1] is the term for id
}

// New returns an empty dictionary.
func New() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].ids = map[string]ID{}
	}
	return d
}

func shardOf(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() % numShards
}

// Encode returns the ID for term, assigning a fresh one if the term is
// new. Safe for concurrent use.
func (d *Dict) Encode(t Term) ID {
	key := t.key()
	s := &d.shards[shardOf(key)]

	s.mu.RLock()
	id, ok := s.ids[key]
	s.mu.RUnlock()
	if ok {
		return id
	}

	// Allocate the global slot first, then publish in the shard.
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok = s.ids[key]; ok {
		return id
	}
	d.mu.Lock()
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.mu.Unlock()
	s.ids[key] = id
	return id
}

// EncodeIRI is shorthand for encoding an IRI term.
func (d *Dict) EncodeIRI(iri string) ID { return d.Encode(Term{Kind: IRI, Value: iri}) }

// EncodeLiteral is shorthand for encoding a plain string literal.
func (d *Dict) EncodeLiteral(v string) ID { return d.Encode(Term{Kind: Literal, Value: v}) }

// EncodeTyped encodes a literal with a datatype IRI.
func (d *Dict) EncodeTyped(v, datatype string) ID {
	return d.Encode(Term{Kind: Literal, Value: v, Datatype: datatype})
}

// Lookup returns the ID already assigned to term, or (None, false).
func (d *Dict) Lookup(t Term) (ID, bool) {
	key := t.key()
	s := &d.shards[shardOf(key)]
	s.mu.RLock()
	id, ok := s.ids[key]
	s.mu.RUnlock()
	return id, ok
}

// LookupIRI returns the ID of an IRI term if present.
func (d *Dict) LookupIRI(iri string) (ID, bool) {
	return d.Lookup(Term{Kind: IRI, Value: iri})
}

// Decode returns the term for id. The second result is false for None
// or out-of-range IDs.
func (d *Dict) Decode(id ID) (Term, bool) {
	if id == None {
		return Term{}, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) > len(d.terms) {
		return Term{}, false
	}
	return d.terms[id-1], true
}

// MustDecode is Decode that panics on unknown IDs; for internal
// invariant checks and tests.
func (d *Dict) MustDecode(id ID) Term {
	t, ok := d.Decode(id)
	if !ok {
		panic(fmt.Sprintf("dict: unknown id %d", id))
	}
	return t
}

// Len returns the number of distinct terms stored.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}
