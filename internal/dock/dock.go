// Package dock implements a small molecular-docking engine standing in
// for AutoDock Vina in the NCNPR workflow. It is a real docking code,
// not a stub: ligand conformers are embedded in 3D, poses are sampled
// with Metropolis Monte-Carlo over rigid-body moves, and poses are
// scored with the five-term Vina scoring function (gauss1, gauss2,
// repulsion, hydrophobic, hydrogen-bond) using Vina's published
// weights. What is simulated is only the cost: a real Vina run takes
// 31-44 s per ligand in the paper, so Cost reports a deterministic
// virtual charge in that range for the rank clock, while the actual
// search here runs a calibrated-down step count.
package dock

import (
	"errors"
	"hash/fnv"
	"math"
	"math/rand"

	"ids/internal/chem"
	"ids/internal/fold"
)

// AtomClass is the interaction class of an atom.
type AtomClass uint8

// Interaction classes.
const (
	Hydrophobic AtomClass = iota
	Donor
	Acceptor
	DonorAcceptor
	Polar // neither hydrophobic nor H-bonding (e.g. aromatic N in ring)
)

// vdW radii by class (Angstroms), approximating C and N/O radii.
func classRadius(c AtomClass) float64 {
	if c == Hydrophobic {
		return 1.9
	}
	return 1.7
}

// RAtom is one receptor interaction site.
type RAtom struct {
	Pos   fold.Point
	Class AtomClass
}

// Receptor is a docking target: interaction sites plus a search box.
type Receptor struct {
	Atoms  []RAtom
	Center fold.Point
	// BoxRadius bounds ligand translation during search.
	BoxRadius float64
}

// residueClass maps amino-acid letters to interaction classes.
func residueClass(r byte) AtomClass {
	switch r {
	case 'A', 'V', 'L', 'I', 'M', 'F', 'W', 'P', 'G':
		return Hydrophobic
	case 'S', 'T', 'Y', 'C':
		return DonorAcceptor
	case 'K', 'R':
		return Donor
	case 'D', 'E':
		return Acceptor
	case 'N', 'Q', 'H':
		return DonorAcceptor
	default:
		return Polar
	}
}

// ReceptorFromStructure builds a docking receptor from a predicted
// structure: each Cα becomes one interaction site typed by its
// residue, and the search box centers on the hydrophobic pocket.
func ReceptorFromStructure(st *fold.Structure) *Receptor {
	rec := &Receptor{
		Atoms:     make([]RAtom, len(st.CA)),
		Center:    st.PocketCenter(),
		BoxRadius: 8,
	}
	for i, p := range st.CA {
		rec.Atoms[i] = RAtom{Pos: p, Class: residueClass(st.Sequence[i])}
	}
	return rec
}

// LAtom is one ligand atom with local coordinates (pose-relative).
type LAtom struct {
	Pos   fold.Point
	Class AtomClass
}

// Ligand is an embedded 3D conformer of a molecule.
type Ligand struct {
	Atoms  []LAtom
	NumRot int // rotatable bonds, used in the affinity normalization
	SMILES string
}

// atomClassOf maps a molecular-graph atom to an interaction class.
func atomClassOf(m *chem.Mol, i int) AtomClass {
	a := m.Atoms[i]
	switch a.Element {
	case "C":
		return Hydrophobic
	case "N":
		if m.ImplicitH(i) > 0 {
			return DonorAcceptor
		}
		return Acceptor
	case "O":
		if m.ImplicitH(i) > 0 {
			return DonorAcceptor
		}
		return Acceptor
	case "S":
		return Hydrophobic
	case "F", "Cl", "Br", "I":
		return Hydrophobic
	default:
		return Polar
	}
}

// ErrNoAtoms is returned when embedding an empty molecule.
var ErrNoAtoms = errors.New("dock: molecule has no atoms")

// Embed generates a deterministic 3D conformer of the molecule by
// breadth-first placement: each atom sits one bond length (1.54 Å)
// from its parent in a direction chosen to avoid clashes.
func Embed(m *chem.Mol, seed int64) (*Ligand, error) {
	n := len(m.Atoms)
	if n == 0 {
		return nil, ErrNoAtoms
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(m.SMILES))))
	pos := make([]fold.Point, n)
	placed := make([]bool, n)
	queue := []int{}
	for start := 0; start < n; start++ {
		if placed[start] {
			continue
		}
		// Disconnected components offset along X.
		pos[start] = fold.Point{X: float64(start) * 4}
		placed[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			at := queue[0]
			queue = queue[1:]
			for _, bi := range m.Neighbors(at) {
				nb := m.Other(m.Bonds[bi], at)
				if placed[nb] {
					continue
				}
				pos[nb] = placeNear(pos, placed, pos[at], rng)
				placed[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	lig := &Ligand{
		Atoms:  make([]LAtom, n),
		NumRot: m.RotatableBonds(),
		SMILES: m.SMILES,
	}
	// Center the conformer on its centroid.
	var c fold.Point
	for _, p := range pos {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(n))
	for i := range lig.Atoms {
		lig.Atoms[i] = LAtom{Pos: pos[i].Sub(c), Class: atomClassOf(m, i)}
	}
	return lig, nil
}

// placeNear returns a position 1.54 Å from parent that keeps at least
// 1 Å from every placed atom, trying a handful of directions.
func placeNear(pos []fold.Point, placed []bool, parent fold.Point, rng *rand.Rand) fold.Point {
	const bondLen = 1.54
	best := fold.Point{}
	bestMin := -1.0
	for try := 0; try < 8; try++ {
		theta := rng.Float64() * 2 * math.Pi
		phi := math.Acos(2*rng.Float64() - 1)
		cand := parent.Add(fold.Point{
			X: bondLen * math.Sin(phi) * math.Cos(theta),
			Y: bondLen * math.Sin(phi) * math.Sin(theta),
			Z: bondLen * math.Cos(phi),
		})
		minD := math.Inf(1)
		for i, p := range pos {
			if !placed[i] {
				continue
			}
			if d := fold.Dist(cand, p); d < minD {
				minD = d
			}
		}
		if minD > bestMin {
			bestMin = minD
			best = cand
		}
		if minD >= 1.0 {
			return cand
		}
	}
	return best
}

// Vina scoring-function weights (Trott & Olson 2010).
const (
	wGauss1      = -0.035579
	wGauss2      = -0.005156
	wRepulsion   = 0.840245
	wHydrophobic = -0.035069
	wHBond       = -0.587439
	wNumRot      = 0.05846
)

// pairScore evaluates the Vina terms for one atom pair at surface
// distance d (center distance minus radii).
func pairScore(d float64, a, b AtomClass) float64 {
	s := wGauss1 * math.Exp(-(d/0.5)*(d/0.5))
	s += wGauss2 * math.Exp(-((d-3)/2)*((d-3)/2))
	if d < 0 {
		s += wRepulsion * d * d
	}
	if a == Hydrophobic && b == Hydrophobic {
		s += wHydrophobic * slope(d, 1.5, 0.5)
	}
	if hbondPair(a, b) {
		s += wHBond * slope(d, 0, -0.7)
	}
	return s
}

// slope is 1 below lo, 0 above hi, linear in between (Vina's
// piecewise-linear terms; note lo > hi order per Vina convention).
func slope(d, hi, lo float64) float64 {
	switch {
	case d <= lo:
		return 1
	case d >= hi:
		return 0
	default:
		return (hi - d) / (hi - lo)
	}
}

func hbondPair(a, b AtomClass) bool {
	don := func(c AtomClass) bool { return c == Donor || c == DonorAcceptor }
	acc := func(c AtomClass) bool { return c == Acceptor || c == DonorAcceptor }
	return (don(a) && acc(b)) || (don(b) && acc(a))
}

// cutoff beyond which pair interactions are ignored (Å).
const cutoff = 8.0

// Pose is a rigid-body placement of the ligand.
type Pose struct {
	Translation fold.Point
	// Rotation as ZYX Euler angles.
	RotZ, RotY, RotX float64
}

// apply transforms a local atom position by the pose.
func (p Pose) apply(local fold.Point) fold.Point {
	v := rotZ(local, p.RotZ)
	v = rotY(v, p.RotY)
	v = rotX(v, p.RotX)
	return v.Add(p.Translation)
}

func rotZ(p fold.Point, a float64) fold.Point {
	c, s := math.Cos(a), math.Sin(a)
	return fold.Point{X: p.X*c - p.Y*s, Y: p.X*s + p.Y*c, Z: p.Z}
}

func rotY(p fold.Point, a float64) fold.Point {
	c, s := math.Cos(a), math.Sin(a)
	return fold.Point{X: p.X*c + p.Z*s, Y: p.Y, Z: -p.X*s + p.Z*c}
}

func rotX(p fold.Point, a float64) fold.Point {
	c, s := math.Cos(a), math.Sin(a)
	return fold.Point{X: p.X, Y: p.Y*c - p.Z*s, Z: p.Y*s + p.Z*c}
}

// score evaluates the full intermolecular energy of the ligand in the
// given pose.
func score(rec *Receptor, lig *Ligand, pose Pose) float64 {
	e := 0.0
	for _, la := range lig.Atoms {
		wp := pose.apply(la.Pos)
		for _, ra := range rec.Atoms {
			d := fold.Dist(wp, ra.Pos)
			if d > cutoff {
				continue
			}
			surf := d - classRadius(la.Class) - classRadius(ra.Class)
			e += pairScore(surf, la.Class, ra.Class)
		}
	}
	return e
}

// Params configures a docking run.
type Params struct {
	Steps int   // Monte-Carlo steps (default 2000)
	Seed  int64 // RNG seed (deterministic poses per seed)
	Temp  float64
}

// DefaultParams returns the calibrated default search parameters.
func DefaultParams(seed int64) Params { return Params{Steps: 2000, Seed: seed, Temp: 1.2} }

// Result is the outcome of one docking run.
type Result struct {
	// Affinity is the Vina-style binding free energy estimate in
	// kcal/mol; more negative is better.
	Affinity float64
	BestPose Pose
	Evals    int
}

// Dock searches for the lowest-energy pose of lig against rec with
// Metropolis Monte-Carlo over rigid-body moves, then converts the best
// intermolecular energy to an affinity with Vina's rotatable-bond
// normalization.
func Dock(rec *Receptor, lig *Ligand, p Params) (Result, error) {
	if len(lig.Atoms) == 0 {
		return Result{}, ErrNoAtoms
	}
	if len(rec.Atoms) == 0 {
		return Result{}, errors.New("dock: receptor has no atoms")
	}
	if p.Steps <= 0 {
		p.Steps = 2000
	}
	if p.Temp <= 0 {
		p.Temp = 1.2
	}
	rng := rand.New(rand.NewSource(p.Seed))
	box := rec.BoxRadius
	if box <= 0 {
		box = 8
	}
	// Start in contact with the pocket (small jitter only) so the
	// search begins inside the interaction shell rather than in empty
	// solvent.
	cur := Pose{
		Translation: rec.Center.Add(fold.Point{
			X: (rng.Float64() - 0.5) * 4,
			Y: (rng.Float64() - 0.5) * 4,
			Z: (rng.Float64() - 0.5) * 4,
		}),
		RotZ: rng.Float64() * 2 * math.Pi,
		RotY: rng.Float64() * 2 * math.Pi,
		RotX: rng.Float64() * 2 * math.Pi,
	}
	curE := score(rec, lig, cur)
	best, bestE := cur, curE
	evals := 1
	for step := 0; step < p.Steps; step++ {
		// Annealed step sizes.
		frac := 1 - float64(step)/float64(p.Steps)
		cand := cur
		step := 0.4 + 3*frac // Å, annealed
		cand.Translation = cand.Translation.Add(fold.Point{
			X: (rng.Float64() - 0.5) * step,
			Y: (rng.Float64() - 0.5) * step,
			Z: (rng.Float64() - 0.5) * step,
		})
		// Keep within the box.
		d := cand.Translation.Sub(rec.Center)
		if d.Norm() > box {
			cand.Translation = rec.Center.Add(d.Scale(box / d.Norm()))
		}
		cand.RotZ += (rng.Float64() - 0.5) * frac
		cand.RotY += (rng.Float64() - 0.5) * frac
		cand.RotX += (rng.Float64() - 0.5) * frac
		e := score(rec, lig, cand)
		evals++
		if e < curE || rng.Float64() < math.Exp((curE-e)/p.Temp) {
			cur, curE = cand, e
			if e < bestE {
				best, bestE = cand, e
			}
		}
	}
	affinity := bestE / (1 + wNumRot*float64(lig.NumRot))
	return Result{Affinity: affinity, BestPose: best, Evals: evals}, nil
}

// Cost returns the virtual execution cost in seconds of docking the
// given ligand SMILES: deterministic, uniform in the 31-44 s band the
// paper measured for AutoDock Vina blind docking.
func Cost(smiles string) float64 {
	h := fnv.New64a()
	h.Write([]byte(smiles))
	u := float64(h.Sum64()%1_000_000) / 1_000_000
	return 31 + 13*u
}
