package dock

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ids/internal/chem"
	"ids/internal/fold"
)

const recSeq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQFEVVHSLAKWKR"

func testReceptor(t *testing.T) *Receptor {
	t.Helper()
	st, err := fold.Predict(recSeq)
	if err != nil {
		t.Fatal(err)
	}
	return ReceptorFromStructure(st)
}

func testLigand(t *testing.T, smiles string) *Ligand {
	t.Helper()
	m, err := chem.ParseSMILES(smiles)
	if err != nil {
		t.Fatal(err)
	}
	lig, err := Embed(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lig
}

func TestEmbedBasics(t *testing.T) {
	lig := testLigand(t, "CC(=O)Oc1ccccc1C(=O)O")
	if len(lig.Atoms) != 13 {
		t.Fatalf("embedded %d atoms, want 13", len(lig.Atoms))
	}
	// Centroid at origin.
	var c fold.Point
	for _, a := range lig.Atoms {
		c = c.Add(a.Pos)
	}
	c = c.Scale(1 / float64(len(lig.Atoms)))
	if c.Norm() > 1e-9 {
		t.Fatalf("centroid %v not at origin", c)
	}
	// No two atoms closer than a tight clash limit.
	for i := range lig.Atoms {
		for j := i + 1; j < len(lig.Atoms); j++ {
			if d := fold.Dist(lig.Atoms[i].Pos, lig.Atoms[j].Pos); d < 0.5 {
				t.Fatalf("atoms %d,%d clash at %f", i, j, d)
			}
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	a := testLigand(t, "CCO")
	b := testLigand(t, "CCO")
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestEmbedDisconnected(t *testing.T) {
	lig := testLigand(t, "C.C")
	if len(lig.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(lig.Atoms))
	}
	if fold.Dist(lig.Atoms[0].Pos, lig.Atoms[1].Pos) < 2 {
		t.Fatal("disconnected components placed on top of each other")
	}
}

func TestEmbedNoAtoms(t *testing.T) {
	m := &chem.Mol{}
	if _, err := Embed(m, 1); !errors.Is(err, ErrNoAtoms) {
		t.Fatalf("err = %v", err)
	}
}

func TestAtomClasses(t *testing.T) {
	m, err := chem.ParseSMILES("CCO")
	if err != nil {
		t.Fatal(err)
	}
	if c := atomClassOf(m, 0); c != Hydrophobic {
		t.Fatalf("carbon class = %d", c)
	}
	if c := atomClassOf(m, 2); c != DonorAcceptor {
		t.Fatalf("hydroxyl O class = %d", c)
	}
	// Carbonyl O (no H) is acceptor only.
	m2, err := chem.ParseSMILES("C=O")
	if err != nil {
		t.Fatal(err)
	}
	if c := atomClassOf(m2, 1); c != Acceptor {
		t.Fatalf("carbonyl O class = %d", c)
	}
}

func TestReceptorFromStructure(t *testing.T) {
	rec := testReceptor(t)
	if len(rec.Atoms) != len(recSeq) {
		t.Fatalf("receptor atoms = %d, want %d", len(rec.Atoms), len(recSeq))
	}
	if rec.BoxRadius <= 0 {
		t.Fatal("non-positive box radius")
	}
}

func TestPairScoreShape(t *testing.T) {
	// Deep overlap must be strongly repulsive.
	if s := pairScore(-1.0, Hydrophobic, Hydrophobic); s <= 0 {
		t.Fatalf("overlap score %f not repulsive", s)
	}
	// Contact distance should be attractive for hydrophobic pairs.
	if s := pairScore(0.3, Hydrophobic, Hydrophobic); s >= 0 {
		t.Fatalf("contact score %f not attractive", s)
	}
	// Far apart: negligible.
	if s := math.Abs(pairScore(7.5, Hydrophobic, Hydrophobic)); s > 0.01 {
		t.Fatalf("far score %f not negligible", s)
	}
	// H-bond pair at ideal distance is more favorable than the same
	// geometry without complementarity.
	hb := pairScore(-0.3, Donor, Acceptor)
	no := pairScore(-0.3, Donor, Donor)
	if hb >= no {
		t.Fatalf("hbond %f not better than non-complementary %f", hb, no)
	}
}

func TestSlope(t *testing.T) {
	if slope(-1, 0, -0.7) != 1 {
		t.Fatal("slope below lo should be 1")
	}
	if slope(0.5, 0, -0.7) != 0 {
		t.Fatal("slope above hi should be 0")
	}
	mid := slope(-0.35, 0, -0.7)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("slope mid = %f", mid)
	}
}

func TestHBondPair(t *testing.T) {
	if !hbondPair(Donor, Acceptor) || !hbondPair(Acceptor, Donor) {
		t.Fatal("donor/acceptor should H-bond")
	}
	if !hbondPair(DonorAcceptor, DonorAcceptor) {
		t.Fatal("hydroxyl pair should H-bond")
	}
	if hbondPair(Donor, Donor) || hbondPair(Hydrophobic, Acceptor) {
		t.Fatal("non-complementary pairs should not H-bond")
	}
}

func TestDockFindsFavorablePose(t *testing.T) {
	rec := testReceptor(t)
	lig := testLigand(t, "CC(=O)Oc1ccccc1C(=O)O")
	res, err := Dock(rec, lig, DefaultParams(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affinity >= 0 {
		t.Fatalf("affinity = %f, want negative (favorable)", res.Affinity)
	}
	if res.Evals < 100 {
		t.Fatalf("evals = %d, search barely ran", res.Evals)
	}
}

func TestDockDeterministic(t *testing.T) {
	rec := testReceptor(t)
	lig := testLigand(t, "CCO")
	a, err := Dock(rec, lig, DefaultParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dock(rec, lig, DefaultParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Affinity != b.Affinity {
		t.Fatalf("same seed, different affinities: %f vs %f", a.Affinity, b.Affinity)
	}
}

func TestDockSearchImproves(t *testing.T) {
	// More steps should not find a worse pose (same seed family).
	rec := testReceptor(t)
	lig := testLigand(t, "c1ccccc1CCO")
	short, err := Dock(rec, lig, Params{Steps: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Dock(rec, lig, Params{Steps: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if long.Affinity > short.Affinity+1e-9 {
		t.Fatalf("longer search worse: %f vs %f", long.Affinity, short.Affinity)
	}
}

func TestDockErrors(t *testing.T) {
	rec := testReceptor(t)
	if _, err := Dock(rec, &Ligand{}, DefaultParams(1)); err == nil {
		t.Fatal("empty ligand accepted")
	}
	lig := testLigand(t, "C")
	if _, err := Dock(&Receptor{}, lig, DefaultParams(1)); err == nil {
		t.Fatal("empty receptor accepted")
	}
}

func TestCostBand(t *testing.T) {
	// Deterministic and in the paper's 31-44 s band.
	if Cost("CCO") != Cost("CCO") {
		t.Fatal("Cost not deterministic")
	}
	seen := map[bool]int{}
	for i := 0; i < 200; i++ {
		c := Cost("C" + strings.Repeat("C", i%20) + "O")
		if c < 31 || c > 44 {
			t.Fatalf("cost %f outside [31,44]", c)
		}
		seen[c > 37.5]++
	}
	if seen[true] == 0 || seen[false] == 0 {
		t.Fatal("costs do not spread over the band")
	}
}

func TestPoseApplyIsRigid(t *testing.T) {
	// Rigid transforms preserve pairwise distances.
	p := Pose{Translation: fold.Point{X: 3, Y: -2, Z: 5}, RotZ: 0.7, RotY: -1.2, RotX: 2.1}
	a := fold.Point{X: 1, Y: 0, Z: 0}
	b := fold.Point{X: 0, Y: 2, Z: -1}
	before := fold.Dist(a, b)
	after := fold.Dist(p.apply(a), p.apply(b))
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("rigid transform changed distance: %f -> %f", before, after)
	}
}

func BenchmarkScore(b *testing.B) {
	st, err := fold.Predict(recSeq)
	if err != nil {
		b.Fatal(err)
	}
	rec := ReceptorFromStructure(st)
	m, err := chem.ParseSMILES("CC(=O)Oc1ccccc1C(=O)O")
	if err != nil {
		b.Fatal(err)
	}
	lig, err := Embed(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	pose := Pose{Translation: rec.Center}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		score(rec, lig, pose)
	}
}

func BenchmarkDock(b *testing.B) {
	st, err := fold.Predict(recSeq)
	if err != nil {
		b.Fatal(err)
	}
	rec := ReceptorFromStructure(st)
	m, err := chem.ParseSMILES("CCO")
	if err != nil {
		b.Fatal(err)
	}
	lig, err := Embed(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dock(rec, lig, Params{Steps: 200, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
