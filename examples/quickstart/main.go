// Quickstart: build a tiny knowledge graph, launch an in-process IDS
// engine, run "what-is" and "what-if" queries, and add a dynamic UDF
// module — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"ids/internal/dict"
	"ids/internal/ids"
	"ids/internal/kg"
	"ids/internal/mpp"
)

const data = `
<http://ex/aspirin>   <http://ex/name>  "aspirin" .
<http://ex/aspirin>   <http://ex/mw>    "180.16" .
<http://ex/caffeine>  <http://ex/name>  "caffeine" .
<http://ex/caffeine>  <http://ex/mw>    "194.19" .
<http://ex/ethanol>   <http://ex/name>  "ethanol" .
<http://ex/ethanol>   <http://ex/mw>    "46.07" .
<http://ex/aspirin>   <http://ex/treats> <http://ex/pain> .
<http://ex/caffeine>  <http://ex/treats> <http://ex/fatigue> .
`

func main() {
	// 1. Build a rank-partitioned graph (4 shards = 4 ranks).
	topo := mpp.Topology{Nodes: 2, RanksPerNode: 2}
	g := kg.New(topo.Size())
	n, err := g.LoadNTriples(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	g.Seal()
	fmt.Printf("loaded %d triples into %d shards\n\n", n, g.NumShards())

	// 2. Wire the engine.
	e, err := ids.NewEngine(g, topo)
	if err != nil {
		log.Fatal(err)
	}

	// 3. "What-is": everything about aspirin.
	res, err := e.WhatIs("http://ex/aspirin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("what-is <aspirin>:")
	for _, row := range e.Strings(res) {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	// 4. "What-if": a filtered query with an expression.
	res, err = e.Query(`
		SELECT ?name ?mw WHERE {
			?c <http://ex/name> ?name .
			?c <http://ex/mw> ?mw .
			FILTER(?mw > 100)
		} ORDER BY DESC(?mw)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompounds with MW > 100:")
	for _, row := range e.Strings(res) {
		fmt.Printf("  %s (%s)\n", row[0], row[1])
	}
	fmt.Printf("simulated query time: %.6fs\n", res.Report.Makespan)

	// 5. Dynamic UDF module (the paper's Python-UDF analogue):
	// loaded once, cached, callable from FILTER.
	err = e.LoadModule("druglike", `
		def light(mw) {
			return mw < 190
		}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = e.Query(`
		SELECT ?name WHERE {
			?c <http://ex/name> ?name .
			?c <http://ex/mw> ?mw .
			FILTER(druglike.light(?mw))
		} ORDER BY ?name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndruglike.light(?mw) UDF filter:")
	for _, row := range e.Strings(res) {
		fmt.Printf("  %s\n", row[0])
	}

	// 6. Per-rank UDF profiling drives the optimizer (paper §2.4.1).
	fmt.Println("\nUDF profile:")
	fmt.Print(e.MergedProfile())

	// Direct graph access is also available.
	if id, ok := g.Dict.Lookup(dict.Term{Kind: dict.IRI, Value: "http://ex/aspirin"}); ok {
		fmt.Printf("aspirin dictionary id: %d (shard %d)\n", id, g.ShardOf(id))
	}
}
