// Graph analytics: distributed PageRank over the knowledge graph on
// the rank runtime — the paper lists accelerating "domain-specific
// UDFs and graph algorithms such as PageRank" among IDS's core
// objectives. Edges live sharded across ranks; each iteration
// exchanges rank mass with an AllToAll, exactly like the engine's
// joins.
package main

import (
	"fmt"
	"log"
	"sort"

	"ids/internal/dict"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/synth"
	"ids/internal/triple"
)

const (
	damping    = 0.85
	iterations = 20
)

func main() {
	topo := mpp.Topology{Nodes: 2, RanksPerNode: 4}
	ds, err := synth.BuildNCNPR(synth.DefaultNCNPR(topo.Size()))
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	inhibits, ok := g.Dict.LookupIRI(synth.PredInhibits)
	if !ok {
		log.Fatal("inhibits predicate missing")
	}

	// Collect the node set (compounds and proteins on inhibit edges).
	nodeSet := map[dict.ID]bool{}
	for s := 0; s < g.NumShards(); s++ {
		g.Shard(s).Match(triple.Pattern{P: inhibits}, func(t triple.Triple) bool {
			nodeSet[t.S] = true
			nodeSet[t.O] = true
			return true
		})
	}
	nodes := make([]dict.ID, 0, len(nodeSet))
	for id := range nodeSet {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	index := make(map[dict.ID]int, len(nodes))
	for i, id := range nodes {
		index[id] = i
	}
	n := len(nodes)
	fmt.Printf("PageRank over %d vertices (inhibitor bipartite graph), %d ranks\n", n, topo.Size())

	owner := func(v int) int { return v % topo.Size() }
	final := make([]float64, n)

	rep, err := mpp.Run(topo, mpp.DefaultNet(), 1, func(r *mpp.Rank) error {
		// Each rank owns the edges of its shard (treated as
		// undirected for the bipartite walk).
		type edge struct{ from, to int }
		var edges []edge
		g.Shard(r.ID()).Match(triple.Pattern{P: inhibits}, func(t triple.Triple) bool {
			a, b := index[t.S], index[t.O]
			edges = append(edges, edge{a, b}, edge{b, a})
			return true
		})
		// Degree = global reduction over per-rank partial degrees.
		degLocal := make([]int, n)
		for _, e := range edges {
			degLocal[e.from]++
		}
		degParts, err := mpp.AllGatherSlice(r, degLocal)
		if err != nil {
			return err
		}
		deg := make([]int, n)
		for _, part := range degParts {
			for v, d := range part {
				deg[v] += d
			}
		}

		rank := make([]float64, n)
		for v := range rank {
			rank[v] = 1.0 / float64(n)
		}
		for it := 0; it < iterations; it++ {
			// Push mass along local edges, routed to the vertex owner.
			send := make([][]float64, r.Size())
			type contrib struct {
				v    int
				mass float64
			}
			buckets := make([][]contrib, r.Size())
			for _, e := range edges {
				if deg[e.from] == 0 {
					continue
				}
				buckets[owner(e.to)] = append(buckets[owner(e.to)],
					contrib{e.to, rank[e.from] / float64(deg[e.from])})
			}
			_ = send
			flat := make([][]float64, r.Size())
			for dst, bs := range buckets {
				arr := make([]float64, 0, len(bs)*2)
				for _, c := range bs {
					arr = append(arr, float64(c.v), c.mass)
				}
				flat[dst] = arr
			}
			recv, err := mpp.AllToAll(r, flat)
			if err != nil {
				return err
			}
			// Owners accumulate, then everyone gathers the new vector.
			mine := make([]float64, n)
			for _, part := range recv {
				for i := 0; i+1 < len(part); i += 2 {
					mine[int(part[i])] += part[i+1]
				}
			}
			parts, err := mpp.AllGatherSlice(r, mine)
			if err != nil {
				return err
			}
			for v := range rank {
				sum := 0.0
				for _, p := range parts {
					sum += p[v]
				}
				if owner(v) >= 0 { // every vertex gets the damped update
					rank[v] = (1-damping)/float64(n) + damping*sum
				}
			}
			r.Charge(float64(len(edges)) * 2e-8) // modeled per-edge cost
		}
		if r.ID() == 0 {
			copy(final, rank)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	type scored struct {
		id dict.ID
		pr float64
	}
	var top []scored
	for i, id := range nodes {
		top = append(top, scored{id, final[i]})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].pr > top[j].pr })
	fmt.Printf("converged in %d iterations, simulated %.4fs\n\n", iterations, rep.Makespan)
	fmt.Println("top 10 hubs (proteins with the most inhibitors rank highest):")
	for i := 0; i < 10 && i < len(top); i++ {
		term := g.Dict.MustDecode(top[i].id)
		fmt.Printf("  %2d. %-55s %.5f\n", i+1, term.Value, top[i].pr)
	}
	var sum float64
	for _, s := range top {
		sum += s.pr
	}
	fmt.Printf("\nmass conservation check: sum(PR) = %.6f (want ~1)\n", sum)
}

var _ = kg.New // keep the kg import explicit for readers
