// Cache sharing: two IDS instances on the same cluster share the
// global client-side cache, so simulations stashed by one are reused
// by the other (paper §3 and the §8 cross-instance vision). Also
// demonstrates node failure and repopulation from the backing stash.
package main

import (
	"fmt"
	"log"
	"os"

	"ids/internal/cache"
	"ids/internal/fam"
	"ids/internal/ids"
	"ids/internal/mpp"
	"ids/internal/store"
	"ids/internal/synth"
	"ids/internal/workflow"
)

func main() {
	topo := mpp.Topology{Nodes: 2, RanksPerNode: 4}

	// One shared backing stash + global cache for the whole cluster.
	dir, err := os.MkdirTemp("", "ids-shared-stash-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	backing, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	gcfg := cache.DefaultConfig()
	gcfg.Nodes = 2
	gc, err := cache.New(gcfg, backing)
	if err != nil {
		log.Fatal(err)
	}

	newInstance := func(name string) *workflow.Workflow {
		ds, err := synth.BuildNCNPR(synth.DefaultNCNPR(topo.Size()))
		if err != nil {
			log.Fatal(err)
		}
		e, err := ids.NewEngine(ds.Graph, topo)
		if err != nil {
			log.Fatal(err)
		}
		w, err := workflow.New(e, ds, workflow.DefaultConfig(), gc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("instance %s up: %d triples\n", name, ds.Graph.Len())
		return w
	}

	// Researcher A runs a docking campaign on instance A.
	wa := newInstance("A")
	ra, err := wa.Run(0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance A: %d docked, %.1fs simulated, misses=%d\n",
		len(ra.Candidates), ra.TotalTime(), ra.CacheMisses)

	// Researcher B, on a *different* IDS instance over the same data,
	// reuses A's stashed artifacts.
	wb := newInstance("B")
	rb, err := wb.Run(0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance B: %d docked, %.1fs simulated, hits=%d misses=%d (%.1fx faster than A)\n",
		len(rb.Candidates), rb.TotalTime(), rb.CacheHits, rb.CacheMisses,
		ra.TotalTime()/rb.TotalTime())

	// Locality queries: where do A's artifacts live?
	if len(ra.Candidates) > 0 {
		key := fmt.Sprintf("dock/%s/%016x", synth.TargetAccession, fam.ObjectID(ra.Candidates[0].SMILES))
		fmt.Printf("\nlocality of %s: %v\n", key, gc.WhereIs(key))
	}

	// A cache node dies; in-memory contents are lost, but the backing
	// stash repopulates on demand (paper §3.2).
	fmt.Println("\nfailing cache node 0...")
	if err := gc.FailNode(0); err != nil {
		log.Fatal(err)
	}
	rc, err := wb.Run(0.99)
	if err != nil {
		log.Fatal(err)
	}
	st := gc.Stats()
	fmt.Printf("after failure: %.1fs simulated (stash reads so far: %d) — still no re-docking (misses=%d)\n",
		rc.TotalTime(), st.StashHits, rc.CacheMisses)
	if err := gc.RecoverNode(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 0 recovered; subsequent queries repopulate its tiers")
}
