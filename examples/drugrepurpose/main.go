// Drug repurposing: the full NCNPR workflow of paper §4 — generate the
// life-science knowledge graph, pose the "what-could-be" query that
// chains Smith-Waterman similarity, pIC50 potency, DTBA inference and
// molecular docking, and show the global cache removing the docking
// bottleneck on the repeated (refined) query.
package main

import (
	"fmt"
	"log"
	"os"

	"ids/internal/cache"
	"ids/internal/ids"
	"ids/internal/mpp"
	"ids/internal/store"
	"ids/internal/synth"
	"ids/internal/workflow"
)

func main() {
	// The cluster: 4 compute nodes x 8 ranks; a 2-node global cache.
	topo := mpp.Topology{Nodes: 4, RanksPerNode: 8}

	fmt.Println("building NCNPR knowledge graph (UniProt/ChEMBL-shaped, Table 2 similarity tiers)...")
	scfg := synth.DefaultNCNPR(topo.Size())
	scfg.BackgroundProteins = 1000
	ds, err := synth.BuildNCNPR(scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d triples, %d proteins, %d compounds; target %s\n",
		ds.Graph.Len(), len(ds.ProteinSim), ds.TotalCompounds, synth.TargetAccession)

	e, err := ids.NewEngine(ds.Graph, topo)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "ids-stash-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	backing, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	gcfg := cache.DefaultConfig()
	gcfg.Nodes = 2
	gc, err := cache.New(gcfg, backing)
	if err != nil {
		log.Fatal(err)
	}

	w, err := workflow.New(e, ds, workflow.DefaultConfig(), gc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nthe inner query (steps 1-4, UDFs ordered by cost and pruning power):")
	fmt.Println(w.InnerQuery(0.5))

	// First exploration: SW similarity >= 0.5.
	rr, err := w.Run(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun 1 (threshold 0.5): %d candidates docked in %.1fs simulated"+
		" (docking %.1fs, rest %.1fs); cache misses: %d\n",
		len(rr.Candidates), rr.TotalTime(), rr.Report.PhaseMax("dock"), rr.NonDockTime(), rr.CacheMisses)

	fmt.Println("top 5 candidates by docking affinity:")
	for i, c := range rr.Candidates {
		if i == 5 {
			break
		}
		fmt.Printf("  %d. %s  %s  %.3f kcal/mol\n", i+1, short(c.Compound), c.SMILES, c.Affinity)
	}

	// The researcher refines the question; the candidate sets overlap,
	// so docking outputs come from the cache (paper Table 2).
	rr2, err := w.Run(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun 2 (threshold 0.9, refined): %d candidates in %.1fs simulated; "+
		"cache hits %d / misses %d (speedup %.1fx)\n",
		len(rr2.Candidates), rr2.TotalTime(), rr2.CacheHits, rr2.CacheMisses,
		rr.TotalTime()/rr2.TotalTime())

	st := gc.Stats()
	fmt.Printf("\nglobal cache: %d puts, %d local DRAM hits, %d remote DRAM hits, %d SSD hits, %d stash reads\n",
		st.Puts, st.DRAMHitsLocal, st.DRAMHitsRemote, st.SSDHits, st.StashHits)

	// "What-could-be", generative arm: novel molecules from the
	// MolGAN surrogate, screened by DTBA, best docked through the
	// same cache.
	gr, err := w.GenerateAndScreen(80, 5, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerative arm: %d generated -> %d passed DTBA screen -> %d docked (%.1fs simulated)\n",
		gr.Generated, gr.Screened, len(gr.Docked), gr.Report.Makespan)
	for i, c := range gr.Docked {
		if i == 3 {
			break
		}
		fmt.Printf("  novel %d: %s  %.3f kcal/mol\n", i+1, c.SMILES, c.Affinity)
	}

	fmt.Println("\nUDF profile after all runs (drives reordering and re-balancing):")
	fmt.Print(e.MergedProfile())
}

func short(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
