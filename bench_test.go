// Package repro's root benchmarks regenerate every table and figure of
// the paper at CI scale: one testing.B benchmark per evaluation
// artifact, each reporting the paper-relevant quantities as custom
// metrics (simulated seconds, speedups, candidate counts). The
// full-size renditions live in cmd/ids-bench (-scale paper).
package repro_test

import (
	"fmt"
	"testing"

	"ids/internal/dtba"
	"ids/internal/experiments"
	"ids/internal/ids"
	"ids/internal/kg"
	"ids/internal/metrics"
	"ids/internal/mpp"
	"ids/internal/synth"
)

func benchScale() experiments.Scale {
	sc := experiments.CIScale()
	sc.NodesList = []int{4, 8, 16}
	return sc
}

// BenchmarkTable1Ingest regenerates Table 1: per-source ingest of the
// seven RDF datasets at the CI scale factor.
func BenchmarkTable1Ingest(b *testing.B) {
	sc := benchScale()
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sc, 8)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Generated
		}
	}
	b.ReportMetric(float64(total), "triples/op")
}

// BenchmarkFig4aEndToEnd regenerates Fig 4(a): total and
// excluding-docking times across the node sweep. Custom metrics carry
// the simulated seconds of the largest configuration.
func BenchmarkFig4aEndToEnd(b *testing.B) {
	sc := benchScale()
	var pts []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	first := pts[0]
	b.ReportMetric(first.Total, "sim-total-small-s")
	b.ReportMetric(last.Total, "sim-total-large-s")
	b.ReportMetric(first.Total/last.Total, "total-speedup")
	b.ReportMetric(float64(last.Docked), "candidates")
}

// BenchmarkFig4bBreakdown regenerates Fig 4(b): the per-phase
// breakdown; metrics expose docking dominance at the largest node
// count.
func BenchmarkFig4bBreakdown(b *testing.B) {
	sc := benchScale()
	var pts []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Dock, "sim-dock-s")
	b.ReportMetric(last.Scan+last.Join+last.Merge, "sim-sjm-s")
	b.ReportMetric(last.Dock/last.Total, "dock-fraction")
}

// BenchmarkFig5Filter regenerates Fig 5: FILTER times across the node
// sweep; the metric is the small/large scaling ratio (paper: 27 s ->
// 7.7 s over 4x nodes, i.e. ~3.5x).
func BenchmarkFig5Filter(b *testing.B) {
	sc := benchScale()
	var pts []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	b.ReportMetric(first.Filter, "sim-filter-small-s")
	b.ReportMetric(last.Filter, "sim-filter-large-s")
	b.ReportMetric(first.Filter/last.Filter, "filter-speedup")
}

// BenchmarkTable2Cache regenerates Table 2: the cached vs uncached
// selectivity sweep; metrics carry the best and worst speedups (paper
// band: 5-15x).
func BenchmarkTable2Cache(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	minS, maxS := rows[0].Speedup, rows[0].Speedup
	for _, r := range rows {
		if r.Speedup < minS {
			minS = r.Speedup
		}
		if r.Speedup > maxS {
			maxS = r.Speedup
		}
	}
	b.ReportMetric(minS, "min-speedup")
	b.ReportMetric(maxS, "max-speedup")
	b.ReportMetric(float64(rows[len(rows)-1].Compounds), "compounds@0.20")
}

// BenchmarkRebalanceAblation regenerates the §2.4.2 ablation: filter
// makespan under none/count/cost balancing on a heterogeneous cluster.
func BenchmarkRebalanceAblation(b *testing.B) {
	sc := benchScale()
	var rows []experiments.RebalanceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RebalanceAblation(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	byPolicy := map[string]float64{}
	for _, r := range rows {
		byPolicy[r.Policy] = r.FilterSec
	}
	b.ReportMetric(byPolicy["none"], "sim-none-s")
	b.ReportMetric(byPolicy["count"], "sim-count-s")
	b.ReportMetric(byPolicy["cost"], "sim-cost-s")
	if byPolicy["cost"] > 0 {
		b.ReportMetric(byPolicy["none"]/byPolicy["cost"], "cost-vs-none-speedup")
	}
}

// BenchmarkRebalanceWorkedExample evaluates the paper's §2.4.2 worked
// example analytically (1.4M solutions over 900 heterogeneous ranks).
func BenchmarkRebalanceWorkedExample(b *testing.B) {
	var costAware, countBased float64
	for i := 0; i < b.N; i++ {
		costAware, countBased, _ = experiments.RebalanceExample()
	}
	b.ReportMetric(costAware, "cost-aware-makespan-s")
	b.ReportMetric(countBased, "count-based-makespan-s")
	b.ReportMetric(countBased/costAware, "improvement")
}

// BenchmarkReorderAblation regenerates the §2.4.3 ablation: FILTER
// time with conjunct reordering off vs on.
func BenchmarkReorderAblation(b *testing.B) {
	sc := benchScale()
	var rows []experiments.ReorderRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ReorderAblation(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FilterSec, "sim-off-s")
	b.ReportMetric(rows[1].FilterSec, "sim-on-s")
}

// BenchmarkWhatIsQuery regenerates the §1 claim that a "what-is" point
// lookup returns in milliseconds.
func BenchmarkWhatIsQuery(b *testing.B) {
	sc := benchScale()
	topo := mpp.Topology{Nodes: 2, RanksPerNode: sc.RanksPerNode}
	ds, err := synth.BuildNCNPR(synth.NCNPRConfig{
		Seed: sc.Seed, Shards: topo.Size(), SeqLen: 240,
		Tiers:              synth.DefaultTable2Tiers(),
		BackgroundProteins: sc.Background, SkipBackgroundSim: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := ids.NewEngine(ds.Graph, topo)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.WhatIs(synth.TargetIRI)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.Report.Makespan
	}
	b.ReportMetric(sim*1000, "sim-ms")
}

// BenchmarkCacheTiers regenerates the §3 tier-cost ladder for a
// docking-artifact-sized object.
func BenchmarkCacheTiers(b *testing.B) {
	var rows []experiments.TierRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.CacheTiers(64 << 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Path {
		case "dram-local":
			b.ReportMetric(r.Seconds*1e6, "dram-local-us")
		case "stash(disk)":
			b.ReportMetric(r.Seconds*1e3, "stash-ms")
		case "recompute(dock)":
			b.ReportMetric(r.Seconds, "recompute-s")
		}
	}
}

// BenchmarkDTBAVariance measures the DTBA cost distribution the paper
// highlights as the motivation for per-UDF profiling (Fig 5
// discussion): mostly ~1 s with a heavy tail.
func BenchmarkDTBAVariance(b *testing.B) {
	var s metrics.Summary
	for i := 0; i < b.N; i++ {
		s = metrics.Summary{}
		for j := 0; j < 2000; j++ {
			s.Add(dtba.Cost("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ", fmt.Sprintf("CC%d", j)))
		}
	}
	b.ReportMetric(s.Mean(), "mean-s")
	b.ReportMetric(s.Quantile(0.95), "p95-s")
	b.ReportMetric(s.Max(), "max-s")
}

// BenchmarkAffinityAblation regenerates the §8 locality-scheduling
// ablation: warm-cache query time and remote fetches, round-robin vs
// affinity placement.
func BenchmarkAffinityAblation(b *testing.B) {
	sc := benchScale()
	var rows []experiments.AffinityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AffinityAblation(sc, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].RemoteHits), "remote-hits-roundrobin")
	b.ReportMetric(float64(rows[1].RemoteHits), "remote-hits-affinity")
}

// BenchmarkScanPlateau regenerates Fig 4(b)'s scan/join/merge plateau
// in isolation: fixed graph, growing ranks, flattening total.
func BenchmarkScanPlateau(b *testing.B) {
	sc := benchScale()
	var pts []experiments.PlateauPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.ScanPlateau(sc, []int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	b.ReportMetric(first.ScanSec*1e6, "scan-small-us")
	b.ReportMetric(last.ScanSec*1e6, "scan-large-us")
	b.ReportMetric(last.TotalSec*1e6, "total-large-us")
}

// BenchmarkIngestNTriples measures bulk-load throughput into the
// partitioned datastore (the substrate behind Table 1).
func BenchmarkIngestNTriples(b *testing.B) {
	g := kg.New(8)
	n := synth.GenerateSource(g, synth.Table1Sources()[4], 1e-5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2 := kg.New(8)
		synth.GenerateSource(g2, synth.Table1Sources()[4], 1e-5, 1)
		g2.Seal()
	}
	b.ReportMetric(float64(n), "triples/op")
}
