// Package repro is the root of the IDS (Intelligent Data Search)
// reproduction — see README.md for the tour, DESIGN.md for the system
// inventory and paper substitutions, and EXPERIMENTS.md for
// paper-vs-measured results.
//
// The library lives under internal/: the engine facade is
// internal/ids, the NCNPR drug-repurposing workflow is
// internal/workflow, and every evaluation artifact is regenerable via
// internal/experiments (driven by cmd/ids-bench and the benchmarks in
// bench_test.go).
package repro
