package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ids/internal/chaos"
)

// runChaosSeed replays one chaos schedule — the same code path as
// TestChaosSchedules, so a seed printed by a CI failure reproduces the
// failure verbatim here, with the step-by-step narration on stderr and
// the report on stdout. Returns the process exit code.
func runChaosSeed(seed int64) int {
	dir, err := os.MkdirTemp("", "ids-chaos-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	rep, err := chaos.Run(chaos.Options{Seed: seed, Dir: dir, Log: os.Stderr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: harness error: %v\n", err)
		return 1
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if !rep.Ok() {
		fmt.Fprintf(os.Stderr, "chaos: seed %d violated %d invariant(s)\n", seed, len(rep.Violations))
		return 1
	}
	fmt.Fprintf(os.Stderr, "chaos: seed %d: all invariants held\n", seed)
	return 0
}
