// ids-bench regenerates every table and figure of the paper's
// evaluation from this reproduction, printing paper-reported and
// measured values side by side.
//
// Usage:
//
//	ids-bench [-scale paper|ci] [-exp all|table1|table2|fig4a|fig4b|fig5|rebalance|reorder|whatis|cachetiers]
//	          [-trace-out trace.json] [-concurrency N] [-load-queries Q]
//	          [-vectors N [-vec-dim D] [-vec-k K] [-vec-ef EF]]
//	ids-bench -compare baseline.json new.json
//	ids-bench -conformance [-conformance-n N] [-conformance-seed S]
//	          [-conformance-md CONFORMANCE.md] [-conformance-out report.json]
//	          [-conformance-compare CONFORMANCE.md]
//
// -conformance runs the SPARQL conformance sweep: a seeded corpus of
// generated queries executes on both engines (row oracle vs columnar
// default) and every outcome lands in a taxonomy bucket. The markdown
// report regenerates CONFORMANCE.md; -conformance-compare gates a run
// against the committed copy and exits 1 when any per-category
// success rate regresses or any P0 (crash/wrong-answer) appears.
//
// -trace-out additionally runs the NCNPR inner query with span tracing
// and writes a JSON trace summary (the EXPLAIN ANALYZE tree plus the
// engine metrics snapshot) to the given file.
//
// -concurrency N switches ids-bench into load mode: instead of the
// experiment tables it hammers one engine with -load-queries inner
// queries at concurrency 1 and at concurrency N, reporting QPS and
// p50/p99 latency for both. With -trace-out the load points are
// embedded in the JSON summary.
//
// -vectors N runs the HNSW-vs-brute access-path benchmark on a seeded
// N-vector corpus; combined with -concurrency and -bench-out the point
// is embedded in the baseline JSON so -compare gates on the index's
// speedup and recall too.
//
// -compare is the regression gate: it diffs two -bench-out baselines
// (QPS, p50/p99 latency, allocs and mallocs per query, and the vector
// point when the baseline carries one) and exits non-zero when any
// metric regressed past its threshold. When both baselines carry a
// fingerprint table, it also flags any query shape newly entering the
// top-3 by allocation share — workload drift a fixed-metric gate
// cannot see. Thresholds are configurable via
// -max-qps-drop, -max-p50-growth, -max-p99-growth, -max-alloc-growth,
// -max-mallocs-growth, -max-vec-speedup-drop (fractions; 0.3 = 30%),
// and -min-vec-recall (absolute floor). CI runs this against the
// committed BENCH_<date>.json baseline.
//
// The "paper" scale uses the paper's node counts (64/128/256 x 32
// ranks) and a 1e-3 rendition of its 66M sequence comparisons; expect
// minutes of wall time. The "ci" scale finishes in seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ids/internal/dtba"
	"ids/internal/experiments"
	"ids/internal/metrics"
)

func main() {
	scaleName := flag.String("scale", "ci", "experiment scale: paper or ci")
	exp := flag.String("exp", "all", "experiment to run")
	traceOut := flag.String("trace-out", "", "write a traced NCNPR query summary (JSON) to this file")
	concurrency := flag.Int("concurrency", 0, "load mode: concurrent query workers (0 = run experiments instead)")
	loadQueries := flag.Int("load-queries", 64, "load mode: total queries per concurrency level")
	benchOut := flag.String("bench-out", "", `load mode: write a machine-readable baseline JSON here ("auto" = BENCH_<date>.json)`)
	vectors := flag.Int("vectors", 0, "vector bench: corpus size for the HNSW-vs-brute access-path point (0 = skip)")
	vecDim := flag.Int("vec-dim", 32, "vector bench: dimensionality")
	vecK := flag.Int("vec-k", 10, "vector bench: top-k per query")
	vecEf := flag.Int("vec-ef", 64, "vector bench: HNSW query beam (efSearch)")
	chaosSeed := flag.Int64("chaos-seed", 0, "replay one chaos schedule by seed, with verbose narration (non-zero exit on an invariant violation)")
	compare := flag.Bool("compare", false, "regression gate: diff two baseline JSON files (args: baseline.json new.json), exit 1 on regression")
	confRun := flag.Bool("conformance", false, "run the SPARQL conformance sweep instead of the experiments")
	var cf confFlags
	flag.IntVar(&cf.n, "conformance-n", 2000, "conformance: corpus size")
	flag.Int64Var(&cf.seed, "conformance-seed", 1, "conformance: generator seed")
	flag.IntVar(&cf.ranks, "conformance-ranks", 2, "conformance: ranks in the differential world")
	flag.StringVar(&cf.outJSON, "conformance-out", "", "conformance: write the machine-readable JSON report here")
	flag.StringVar(&cf.outMD, "conformance-md", "", "conformance: write the markdown report (CONFORMANCE.md) here")
	flag.StringVar(&cf.compare, "conformance-compare", "", "conformance: baseline CONFORMANCE.md to gate against; exit 1 on any per-category success-rate regression")
	// Threshold flags default to the real defaults (not a 0 sentinel)
	// so 0 is a valid explicit value: fail on any regression at all.
	defTh := experiments.DefaultCompareThresholds()
	th := defTh
	flag.Float64Var(&th.MaxQPSDrop, "max-qps-drop", defTh.MaxQPSDrop, "compare: max tolerated fractional QPS drop")
	flag.Float64Var(&th.MaxP50Growth, "max-p50-growth", defTh.MaxP50Growth, "compare: max tolerated fractional p50 latency growth")
	flag.Float64Var(&th.MaxP99Growth, "max-p99-growth", defTh.MaxP99Growth, "compare: max tolerated fractional p99 latency growth")
	flag.Float64Var(&th.MaxAllocGrowth, "max-alloc-growth", defTh.MaxAllocGrowth, "compare: max tolerated fractional alloc-bytes-per-query growth")
	flag.Float64Var(&th.MaxMallocsGrowth, "max-mallocs-growth", defTh.MaxMallocsGrowth, "compare: max tolerated fractional mallocs-per-query growth")
	flag.Float64Var(&th.MaxVecSpeedupDrop, "max-vec-speedup-drop", defTh.MaxVecSpeedupDrop, "compare: max tolerated fractional HNSW-speedup drop")
	flag.Float64Var(&th.MinVecRecall, "min-vec-recall", defTh.MinVecRecall, "compare: absolute recall@k floor for the vector point")
	flag.Parse()

	if *chaosSeed != 0 {
		os.Exit(runChaosSeed(*chaosSeed))
	}

	if *confRun {
		os.Exit(runConformance(cf))
	}

	if *compare {
		for name, v := range map[string]float64{
			"-max-qps-drop":         th.MaxQPSDrop,
			"-max-p50-growth":       th.MaxP50Growth,
			"-max-p99-growth":       th.MaxP99Growth,
			"-max-alloc-growth":     th.MaxAllocGrowth,
			"-max-mallocs-growth":   th.MaxMallocsGrowth,
			"-max-vec-speedup-drop": th.MaxVecSpeedupDrop,
			"-min-vec-recall":       th.MinVecRecall,
		} {
			if v < 0 {
				fmt.Fprintf(os.Stderr, "compare: %s must be >= 0 (got %g)\n", name, v)
				os.Exit(2)
			}
		}
		os.Exit(runCompare(flag.Args(), th))
	}

	var sc experiments.Scale
	switch *scaleName {
	case "paper":
		sc = experiments.PaperScale()
	case "ci":
		sc = experiments.CIScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	// The vector point runs before the load alloc bracket so its
	// corpus churn doesn't pollute per-query allocation numbers.
	var vecPoint *experiments.VectorBenchPoint
	if *vectors > 0 {
		p, err := runVectorBench(*vectors, *vecDim, *vecK, *vecEf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vector bench: %v\n", err)
			os.Exit(1)
		}
		vecPoint = p
		if *concurrency == 0 {
			return // vector-only run: skip the experiment tables
		}
	}

	if *concurrency > 0 {
		// Alloc accounting brackets the load run so BENCH_<date>.json
		// carries per-query allocation alongside QPS and latency.
		var msBefore, msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
		load, fps, err := runLoad(sc, *concurrency, *loadQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&msAfter)
		if *benchOut != "" {
			if err := writeBenchReport(sc, *benchOut, load, fps, vecPoint, msBefore, msAfter); err != nil {
				fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
				os.Exit(1)
			}
		}
		if *traceOut != "" {
			if err := writeTraceSummary(sc, *traceOut, load); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	run := func(name string, f func(experiments.Scale) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n### %s (scale=%s)\n\n", name, sc.Name)
		if err := f(sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", runTable1)
	run("fig4a", runFig4a)
	run("fig4b", runFig4b)
	run("fig5", runFig5)
	run("table2", runTable2)
	run("rebalance", runRebalance)
	run("reorder", runReorder)
	run("whatis", runWhatIs)
	run("cachetiers", runCacheTiers)
	run("affinity", runAffinity)

	if *traceOut != "" {
		if err := writeTraceSummary(sc, *traceOut, nil); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
	}
}

// runLoad measures query throughput at concurrency 1 and at the
// requested level, printing QPS and latency quantiles for both.
func runLoad(sc experiments.Scale, concurrency, queries int) ([]experiments.LoadPoint, []experiments.FingerprintPoint, error) {
	nodes := sc.NodesList[0]
	fmt.Printf("\n### load (scale=%s, %d nodes, %d queries per level)\n\n", sc.Name, nodes, queries)
	levels := []int{1}
	if concurrency > 1 {
		levels = append(levels, concurrency)
	}
	var pts []experiments.LoadPoint
	// The last (highest-concurrency) level's fingerprint table lands
	// in the baseline: it covers the run the gate's metrics come from.
	var fps []experiments.FingerprintPoint
	for _, c := range levels {
		pt, f, err := experiments.ConcurrentLoadStats(sc, nodes, c, queries)
		if err != nil {
			return nil, nil, err
		}
		pts = append(pts, *pt)
		fps = f
	}
	t := metrics.NewTable("concurrent query load (engine-level, snapshot-isolated reads)",
		"concurrency", "queries", "errors", "wall(s)", "QPS", "p50(ms)", "p99(ms)")
	for _, p := range pts {
		t.AddRow(p.Concurrency, p.Queries, p.Errors,
			fmt.Sprintf("%.3f", p.WallSec), fmt.Sprintf("%.1f", p.QPS),
			fmt.Sprintf("%.2f", p.P50Ms), fmt.Sprintf("%.2f", p.P99Ms))
	}
	t.Render(os.Stdout)
	if len(pts) == 2 && pts[0].QPS > 0 {
		fmt.Printf("\nspeedup at concurrency %d: %.2fx QPS over serial\n",
			pts[1].Concurrency, pts[1].QPS/pts[0].QPS)
	}
	if len(fps) > 0 {
		ft := metrics.NewTable("top fingerprints (workload observatory over the last level)",
			"fingerprint", "count", "alloc-share", "p99(s)")
		for _, f := range fps {
			ft.AddRow(f.Fingerprint, f.Count,
				fmt.Sprintf("%.1f%%", 100*f.AllocShare), fmt.Sprintf("%.6f", f.LatencyP99))
		}
		fmt.Println()
		ft.Render(os.Stdout)
	}
	return pts, fps, nil
}

// writeBenchReport writes the load-mode baseline JSON; path "auto"
// names the file BENCH_<date>.json in the working directory. The
// report types live in internal/experiments so the -compare gate and
// its tests share them.
func writeBenchReport(sc experiments.Scale, path string, load []experiments.LoadPoint, fps []experiments.FingerprintPoint, vec *experiments.VectorBenchPoint, before, after runtime.MemStats) error {
	date := time.Now().Format("2006-01-02")
	if path == "auto" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}
	rep := experiments.BenchReport{
		Date:         date,
		Scale:        sc.Name,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Load:         load,
		Vector:       vec,
		Fingerprints: fps,
		Alloc: experiments.BenchAlloc{
			AllocBytesTotal: after.TotalAlloc - before.TotalAlloc,
			MallocsTotal:    after.Mallocs - before.Mallocs,
			GCCycles:        after.NumGC - before.NumGC,
		},
	}
	for _, p := range load {
		rep.Alloc.TotalQueries += p.Queries
	}
	if n := rep.Alloc.TotalQueries; n > 0 {
		rep.Alloc.AllocBytesPerQuery = float64(rep.Alloc.AllocBytesTotal) / float64(n)
		rep.Alloc.MallocsPerQuery = float64(rep.Alloc.MallocsTotal) / float64(n)
	}
	if err := experiments.WriteBenchReport(path, &rep); err != nil {
		return err
	}
	fmt.Printf("\nbench baseline: %s (%.0f B/query, %.0f mallocs/query over %d queries)\n",
		path, rep.Alloc.AllocBytesPerQuery, rep.Alloc.MallocsPerQuery, rep.Alloc.TotalQueries)
	return nil
}

// runVectorBench measures the HNSW access path against the exact scan
// on a seeded corpus and prints the point that lands in the baseline.
func runVectorBench(vectors, dim, k, ef int) (*experiments.VectorBenchPoint, error) {
	opts := experiments.DefaultVectorBenchOptions()
	opts.Vectors, opts.Dim, opts.K, opts.EfSearch = vectors, dim, k, ef
	fmt.Printf("\n### vector access path (%d vectors, dim %d, k %d, M %d, efC %d, efS %d)\n\n",
		opts.Vectors, opts.Dim, opts.K, opts.M, opts.EfConstruction, opts.EfSearch)
	pt, err := experiments.VectorBench(opts)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("HNSW vs brute-force top-k (seeded corpus and queries)",
		"path", "p50(ms)", "recall@k", "visited(mean)")
	t.AddRow("brute", fmt.Sprintf("%.4f", pt.BruteP50Ms), "1.0000", pt.Vectors)
	t.AddRow("hnsw", fmt.Sprintf("%.4f", pt.HNSWP50Ms), fmt.Sprintf("%.4f", pt.Recall),
		fmt.Sprintf("%.0f", pt.VisitedMean))
	t.Render(os.Stdout)
	fmt.Printf("\nbuild %.2fs; speedup %.1fx (brute p50 / hnsw p50)\n", pt.BuildSec, pt.Speedup)
	return pt, nil
}

// runCompare is the bench regression gate: it diffs the new baseline
// against the committed one and returns 1 when any metric breached its
// threshold (the exit status CI keys off).
func runCompare(args []string, th experiments.CompareThresholds) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ids-bench -compare [threshold flags] baseline.json new.json")
		return 2
	}
	base, err := experiments.ReadBenchReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	nw, err := experiments.ReadBenchReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 2
	}
	fmt.Printf("bench compare: baseline %s (%s, go %s, GOMAXPROCS %d) vs new %s (%s, go %s, GOMAXPROCS %d)\n",
		base.Date, base.Scale, base.GoVersion, base.GOMAXPROCS,
		nw.Date, nw.Scale, nw.GoVersion, nw.GOMAXPROCS)
	if base.Scale != nw.Scale {
		fmt.Printf("note: scales differ (%q vs %q) — comparison is apples to oranges\n", base.Scale, nw.Scale)
	}
	regs := experiments.CompareBench(base, nw, th)
	if len(regs) == 0 {
		fmt.Println("no regression: all metrics within thresholds")
		return 0
	}
	fmt.Printf("REGRESSION: %d metric(s) breached thresholds:\n", len(regs))
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	return 1
}

// writeTraceSummary runs the NCNPR inner query traced and writes the
// span trace plus metrics snapshot (and any load points) as JSON.
func writeTraceSummary(sc experiments.Scale, path string, load []experiments.LoadPoint) error {
	nodes := sc.NodesList[0]
	sum, err := experiments.TraceSummary(sc, nodes)
	if err != nil {
		return err
	}
	sum.Load = load
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace summary (%d nodes): %s — makespan %.3fs, %d ops, %d rows\n",
		sum.Nodes, path, sum.Trace.Makespan, len(sum.Trace.Ops), sum.Trace.Rows)
	sum.Trace.Render(os.Stdout, false)
	return nil
}

func runAffinity(sc experiments.Scale) error {
	nodes := 4
	rows, err := experiments.AffinityAblation(sc, nodes)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"§8 ablation: cache-affinity scheduling of docking tasks (warm cache)",
		"affinity", "warm-query(s)", "remote-dram-hits")
	for _, r := range rows {
		t.AddRow(r.Affinity, r.WarmSec, r.RemoteHits)
	}
	t.Render(os.Stdout)
	return nil
}

func runTable1(sc experiments.Scale) error {
	rows, err := experiments.Table1(sc, 8)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table 1: dataset characteristics (generated at scale %.0e)", sc.Table1Scale),
		"dataset", "paper triples", "generated", "ingest", "triples/s")
	for _, r := range rows {
		t.AddRow(r.Name, r.PaperTriples, r.Generated, r.IngestWall.Round(1e6), int(r.TriplesPerSec))
	}
	t.Render(os.Stdout)
	return nil
}

// fig4Cache shares one sweep across the three figure renderers.
var fig4Points []experiments.ScalingPoint

func fig4(sc experiments.Scale) ([]experiments.ScalingPoint, error) {
	if fig4Points != nil {
		return fig4Points, nil
	}
	pts, err := experiments.Fig4(sc)
	if err != nil {
		return nil, err
	}
	fig4Points = pts
	return pts, nil
}

func runFig4a(sc experiments.Scale) error {
	pts, err := fig4(sc)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Fig 4(a): NCNPR query scaling (paper: 86/72/62 s total, 43/29/19 s excl. docking at 64/128/256 nodes)",
		"nodes", "ranks", "total(s)", "excl-dock(s)", "candidates", "wall")
	for _, p := range pts {
		t.AddRow(p.Nodes, p.Ranks, p.Total, p.NonDock, p.Docked, p.Wall.Round(1e6))
	}
	t.Render(os.Stdout)
	if sc.CalibrateToPaper {
		fmt.Printf("\nscale note: %d synthetic comparisons stand for the paper's %d; "+
			"the per-call SW cost is calibrated so filter times are at paper scale\n",
			sc.Comparisons(), experiments.PaperSWComparisons)
	} else {
		fmt.Printf("\nscale note: %d of the paper's %d SW comparisons (x%.0f extrapolation on scan-bound phases)\n",
			sc.Comparisons(), experiments.PaperSWComparisons, sc.ExtrapolationFactor())
	}
	return nil
}

func runFig4b(sc experiments.Scale) error {
	pts, err := fig4(sc)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Fig 4(b): phase breakdown (paper: docking dominates and is flat; scan/join/merge plateau; FILTER scales)",
		"nodes", "scan(ms)", "join(ms)", "merge(ms)", "filter(s)", "dock(s)")
	for _, p := range pts {
		t.AddRow(p.Nodes, p.Scan*1000, p.Join*1000, p.Merge*1000, p.Filter, p.Dock)
	}
	t.Render(os.Stdout)
	fmt.Println("\nScan/join/merge at this graph scale sit in the collective-latency floor;")
	fmt.Println("the plateau mechanism in isolation (fixed graph, growing ranks):")

	nodesList := []int{2, 8, 32, 128}
	if sc.Name == "ci" {
		nodesList = []int{2, 4, 8, 16}
	}
	pl, err := experiments.ScanPlateau(sc, nodesList)
	if err != nil {
		return err
	}
	pt := metrics.NewTable("scan-plateau microbenchmark",
		"nodes", "ranks", "scan(ms)", "merge(ms)", "total(ms)", "rows")
	for _, p := range pl {
		pt.AddRow(p.Nodes, p.Ranks, p.ScanSec*1000, p.MergeSec*1000, p.TotalSec*1000, p.RowsTotal)
	}
	pt.Render(os.Stdout)
	return nil
}

func runFig5(sc experiments.Scale) error {
	pts, err := fig4(sc)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Fig 5: FILTER times (paper: 27 / 18.5 / 7.7 s at 64/128/256 nodes)",
		"nodes", "filter(s)", "filter at paper scale(s)")
	for _, p := range pts {
		t.AddRow(p.Nodes, p.Filter, p.Filter*sc.FilterExtrapolation())
	}
	t.Render(os.Stdout)
	if sc.CalibrateToPaper {
		fmt.Println("(SW cost paper-calibrated: measured filter times are already at paper scale)")
	}

	// DTBA variance: the paper notes most predictions take ~1 s with a
	// heavy tail, which is why per-UDF profiling matters.
	var s metrics.Summary
	for i := 0; i < 2000; i++ {
		s.Add(dtba.Cost("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ", fmt.Sprintf("CC%d", i)))
	}
	fmt.Printf("\nDTBA per-call cost distribution: %s\n", s.String())
	s.Histogram(10, os.Stdout)
	return nil
}

func runTable2(sc experiments.Scale) error {
	rows, err := experiments.Table2(sc)
	if err != nil {
		return err
	}
	paper := experiments.PaperTable2()
	t := metrics.NewTable(
		"Table 2: query times across SW selectivity (paper 5-15x cache win)",
		"selectivity", "compounds", "paper-compounds",
		"no-cache(s)", "paper-no-cache(s)", "cached(s)", "paper-cached(s)", "speedup")
	for i, r := range rows {
		t.AddRow(r.Selectivity, r.Compounds, paper[i].Compounds,
			r.NoCacheSec, paper[i].NoCacheSec, r.CachedSec, paper[i].CachedSec,
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	t.Render(os.Stdout)
	return nil
}

func runRebalance(sc experiments.Scale) error {
	costAware, countBased, targets := experiments.RebalanceExample()
	fmt.Println("Worked example (paper §2.4.2): 1.4M solutions, 900 ranks (500@100, 300@200, 100@300 ops/s)")
	fmt.Printf("  per-rank chunks: slow=%d medium=%d fast=%d (1:2:3, the paper's chunk x ratio shape)\n",
		targets[0], targets[500], targets[800])
	fmt.Printf("  estimated makespan: cost-aware=%.2fs count-based=%.2fs (%.2fx better)\n",
		costAware, countBased, countBased/costAware)

	nodes := 6
	if sc.Name == "ci" {
		nodes = 3
	}
	rows, err := experiments.RebalanceAblation(sc, nodes)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Live ablation: heterogeneous cluster (%d nodes, 1/3 at 3x UDF cost)", nodes),
		"policy", "filter(s)", "total(s)")
	for _, r := range rows {
		t.AddRow(r.Policy, r.FilterSec, r.TotalSec)
	}
	t.Render(os.Stdout)
	return nil
}

func runReorder(sc experiments.Scale) error {
	rows, err := experiments.ReorderAblation(sc, 2)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"§2.4.3 ablation: FILTER conjunct reordering (query written worst-first)",
		"reorder", "filter(s)")
	for _, r := range rows {
		t.AddRow(r.Reorder, r.FilterSec)
	}
	t.Render(os.Stdout)
	return nil
}

func runWhatIs(sc experiments.Scale) error {
	sec, err := experiments.WhatIs(sc, 2)
	if err != nil {
		return err
	}
	fmt.Printf("what-is point lookup: %.3f ms simulated (paper: milliseconds)\n", sec*1000)
	return nil
}

func runCacheTiers(sc experiments.Scale) error {
	rows, err := experiments.CacheTiers(64 << 10)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"Cache tier access costs for one 64 KiB docking artifact",
		"path", "seconds")
	for _, r := range rows {
		t.AddRow(r.Path, fmt.Sprintf("%.6f", r.Seconds))
	}
	t.Render(os.Stdout)
	return nil
}
