package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ids/internal/conformance"
)

// confFlags carries the -conformance-* flag values from main.
type confFlags struct {
	n       int
	seed    int64
	ranks   int
	outJSON string
	outMD   string
	compare string
}

// runConformance executes the conformance sweep and returns the
// process exit code: 0 clean, 1 on P0 outcomes or a gated regression,
// 2 on usage/IO errors.
func runConformance(cf confFlags) int {
	if cf.n <= 0 || cf.ranks <= 0 {
		fmt.Fprintln(os.Stderr, "conformance: -conformance-n and -conformance-ranks must be positive")
		return 2
	}
	w, err := conformance.NewWorld(cf.ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance: building world: %v\n", err)
		return 2
	}
	qs := conformance.Generate(cf.seed, cf.n)
	rep := w.RunAll(cf.seed, qs)

	fmt.Printf("conformance: %d queries (seed %d, %d ranks)\n", rep.N, rep.Seed, rep.Ranks)
	fmt.Printf("%-16s %8s %8s %8s\n", "category", "queries", "pass", "rate")
	for _, cs := range rep.Categories {
		fmt.Printf("%-16s %8d %8d %7.2f%%\n", cs.Name, cs.Total, cs.Pass, cs.Rate())
	}
	for _, o := range rep.Failures {
		fmt.Printf("%s [%s] %s\n  %s\n", o.Priority, o.Bucket, o.Query.Text, o.Detail)
	}

	if cf.outJSON != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "conformance: encoding report: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cf.outJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "conformance: %v\n", err)
			return 2
		}
		fmt.Printf("conformance: wrote JSON report to %s\n", cf.outJSON)
	}
	if cf.outMD != "" {
		if err := os.WriteFile(cf.outMD, []byte(rep.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "conformance: %v\n", err)
			return 2
		}
		fmt.Printf("conformance: wrote markdown report to %s\n", cf.outMD)
	}

	code := 0
	if cf.compare != "" {
		base, err := os.ReadFile(cf.compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conformance: reading baseline: %v\n", err)
			return 2
		}
		if err := conformance.Compare(string(base), rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		} else {
			fmt.Printf("conformance: no regression against %s\n", cf.compare)
		}
	}
	if n := rep.P0Count(); n > 0 {
		fmt.Fprintf(os.Stderr, "conformance: %d P0 outcomes (crash/wrong-answer)\n", n)
		code = 1
	}
	return code
}
