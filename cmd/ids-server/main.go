// ids-server launches one IDS instance: it builds (or loads) the
// knowledge graph, opens the HTTP query endpoint, and blocks. This is
// the Datastore Launcher + backend of the deployment model.
//
// Usage:
//
//	ids-server [-addr host:port] [-nodes N] [-rpn R]
//	           [-data graph.nt | -synth-ncnpr] [-background N]
//	           [-data-dir dir] [-fsync always|interval|none]
//	           [-checkpoint-interval d] [-checkpoint-updates n]
//
// With -synth-ncnpr the server hosts the generated NCNPR
// drug-repurposing graph with the workflow UDFs (ncnpr.sw,
// ncnpr.pic50, ncnpr.dtba) pre-registered.
//
// With -data-dir the instance is durable: updates are write-ahead
// logged before they apply, a background checkpointer folds the log
// into snapshots, and a restart recovers the last durable state (which
// then takes precedence over -data / -snapshot / -synth-ncnpr).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"

	"ids/internal/ids"
	"ids/internal/kg"
	"ids/internal/mpp"
	"ids/internal/obs"
	"ids/internal/synth"
	"ids/internal/wal"
	"ids/internal/workflow"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7474", "listen address")
	nodes := flag.Int("nodes", 2, "simulated compute nodes")
	rpn := flag.Int("rpn", 4, "ranks per node")
	dataPath := flag.String("data", "", "N-Triples file to load")
	snapPath := flag.String("snapshot", "", "binary snapshot to restore (see ids-cli snapshot)")
	synthNCNPR := flag.Bool("synth-ncnpr", false, "host the synthetic NCNPR graph with workflow UDFs")
	background := flag.Int("background", 2000, "background proteins for -synth-ncnpr")
	maxInflight := flag.Int("max-inflight", 0, "concurrent query limit (0 = GOMAXPROCS-derived)")
	maxQueue := flag.Int("max-queue", 0, "admission queue length (0 = 4x max-inflight, -1 = no queue)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max admission queue wait before 429 (0 = 2s default)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always | interval | none")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "background checkpoint period (0 = 30s default, <0 disables)")
	ckptUpdates := flag.Int("checkpoint-updates", 0, "checkpoint after this many updates (0 = 256 default, <0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	slowQuery := flag.Duration("slow-query", 0, "pin and WARN-log queries at or above this wall time, and flight-record them (0 disables)")
	slowQueryAlloc := flag.Int64("slow-query-alloc", 0, "flight-record queries allocating at least this many heap bytes (0 disables)")
	tailSampleN := flag.Int("tail-sample-n", 0, "tail-sample 1-in-N queries per fingerprint (0 = default 64, <0 disables)")
	insightsTopK := flag.Int("insights-top-k", 0, "workload fingerprints tracked with full statistics (0 = default 64)")
	traceExport := flag.String("trace-export", "", "export tail-retained traces as OTLP-JSON: http(s) collector URL, or a file to append JSON lines")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		log.Fatalf("-log-format: %v", err)
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import; a separate listener keeps them off the query port.
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server stopped", "err", err)
			}
		}()
	}

	topo := mpp.Topology{Nodes: *nodes, RanksPerNode: *rpn}
	cfg := ids.LaunchConfig{
		Topo: topo, Addr: *addr, NTriplesPath: *dataPath,
		Admission: ids.AdmissionConfig{
			MaxInFlight:  *maxInflight,
			MaxQueue:     *maxQueue,
			QueueTimeout: *queueTimeout,
		},
		Logger:              logger,
		SlowQuerySeconds:    slowQuery.Seconds(),
		SlowQueryAllocBytes: *slowQueryAlloc,
		TailSampleN:         *tailSampleN,
		InsightsTopK:        *insightsTopK,
		TraceExportDest:     *traceExport,
	}
	if *dataDir != "" {
		pol, err := wal.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("-fsync: %v", err)
		}
		cfg.Durability = &ids.DurabilityConfig{
			Dir:                *dataDir,
			Fsync:              pol,
			CheckpointInterval: *ckptInterval,
			CheckpointEvery:    *ckptUpdates,
		}
	}

	if *snapPath != "" {
		f, err := os.Open(*snapPath)
		if err != nil {
			log.Fatalf("opening snapshot: %v", err)
		}
		g, err := kg.LoadSnapshot(f, topo.Size())
		f.Close()
		if err != nil {
			log.Fatalf("restoring snapshot: %v", err)
		}
		cfg.Graph = g
		fmt.Printf("restored snapshot %s: %d triples\n", *snapPath, g.Len())
	}

	var ds *synth.Dataset
	if *synthNCNPR {
		scfg := synth.DefaultNCNPR(topo.Size())
		scfg.BackgroundProteins = *background
		scfg.SkipBackgroundSim = *background > 2000
		var err error
		ds, err = synth.BuildNCNPR(scfg)
		if err != nil {
			log.Fatalf("building NCNPR graph: %v", err)
		}
		cfg.Graph = ds.Graph
	}

	inst, err := ids.Launcher{}.Launch(cfg)
	if err != nil {
		log.Fatalf("launch: %v", err)
	}
	defer inst.Teardown()

	if ds != nil {
		if _, err := workflow.New(inst.Engine, ds, workflow.DefaultConfig(), nil); err != nil {
			log.Fatalf("registering workflow UDFs: %v", err)
		}
		fmt.Printf("NCNPR graph: %d triples, target %s\n", ds.Graph.Len(), synth.TargetIRI)
	}
	if r := inst.Recovery; r != nil {
		fmt.Printf("durable: recovered to lsn %d (snapshot %q covers lsn %d; %d records replayed, %d torn tails repaired)\n",
			r.LastLSN, r.Snapshot, r.SnapshotLSN, r.ReplayedRecords, r.TornTailTruncations)
	}
	fmt.Printf("IDS endpoint listening on http://%s (%d nodes x %d ranks, %d triples)\n",
		inst.Addr, topo.Nodes, topo.RanksPerNode, inst.Engine.Graph.Len())
	fmt.Println("POST /query, POST /update, POST /module, POST /checkpoint, GET /profile, GET /stats, GET /metrics, GET /trace, GET /traces, GET /insights, GET /debug/flightrec, GET /healthz, GET /readyz")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nteardown")
	inst.DumpLogs(os.Stdout)
}
