// ids-cli is the Datastore Client: it submits queries, imports and
// reloads UDF modules, and inspects a running IDS endpoint.
//
// Usage:
//
//	ids-cli -e http://host:port query  [-explain] 'SELECT ...'
//	ids-cli -e http://host:port vector upsert -store fp -key <iri> 0.1 0.2 0.3
//	ids-cli -e http://host:port vector search -store fp -key <iri> -k 10
//	ids-cli -e http://host:port module -name mymod -file code.ids [-reload]
//	ids-cli -e http://host:port stats
//	ids-cli -e http://host:port profile
//	ids-cli -e http://host:port metrics
//	ids-cli -e http://host:port trace  q000001
//	ids-cli -e http://host:port insights [-top N] [-q]
//	ids-cli -e http://host:port flightrec [qid] [-artifact heap|goroutine -o file]
//
// query -explain runs the query with span tracing and renders the
// EXPLAIN ANALYZE tree (per-operator rows, virtual seconds, per-rank
// skew, accounted allocations) after the result table.
//
// flightrec lists the server's flight-recorder captures (queries that
// breached the latency or allocation budget); with a qid it renders
// that capture's trace, and -artifact downloads the pinned heap or
// goroutine profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ids/internal/ids"
	"ids/internal/metrics"
	"ids/internal/obs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ids-cli -e <endpoint> <query|update|vector|module|snapshot|checkpoint|stats|profile|metrics|trace|insights|flightrec> [args]")
	os.Exit(2)
}

func runUpdate(c *ids.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("update takes exactly one argument")
	}
	res, err := c.Update(args[0])
	if err != nil {
		return err
	}
	if res.LSN > 0 {
		fmt.Printf("%s: applied %d of %d triples (lsn %d)\n", res.Kind, res.Applied, res.Total, res.LSN)
	} else {
		fmt.Printf("%s: applied %d of %d triples\n", res.Kind, res.Applied, res.Total)
	}
	return nil
}

// runVector drives the vector endpoints:
//
//	ids-cli vector upsert -store fp -key <iri> 0.1 0.2 0.3
//	ids-cli vector search -store fp -key <iri> -k 10
func runVector(c *ids.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("vector requires a subcommand: upsert|search")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("vector "+sub, flag.ExitOnError)
	store := fs.String("store", "", "vector store name")
	key := fs.String("key", "", "vector key (e.g. the entity IRI)")
	k := fs.Int("k", 10, "neighbours to return (search)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" || *key == "" {
		return fmt.Errorf("vector %s requires -store and -key", sub)
	}
	switch sub {
	case "upsert":
		if fs.NArg() == 0 {
			return fmt.Errorf("vector upsert requires the vector components as arguments")
		}
		vec := make([]float32, fs.NArg())
		for i, a := range fs.Args() {
			v, err := strconv.ParseFloat(a, 32)
			if err != nil {
				return fmt.Errorf("vector component %q: %w", a, err)
			}
			vec[i] = float32(v)
		}
		res, err := c.VectorUpsert(*store, *key, vec)
		if err != nil {
			return err
		}
		if res.LSN > 0 {
			fmt.Printf("%s: %s[%q] <- %d dims (lsn %d)\n", res.Kind, *store, *key, len(vec), res.LSN)
		} else {
			fmt.Printf("%s: %s[%q] <- %d dims\n", res.Kind, *store, *key, len(vec))
		}
		return nil
	case "search":
		hits, err := c.VectorSearch(*store, *key, *k)
		if err != nil {
			return err
		}
		t := metrics.NewTable(fmt.Sprintf("top-%d of %s near %q", *k, *store, *key), "key", "score")
		for _, h := range hits {
			t.AddRow(h.Key, fmt.Sprintf("%.6f", h.Score))
		}
		t.Render(os.Stdout)
		return nil
	}
	return fmt.Errorf("unknown vector subcommand %q (want upsert|search)", sub)
}

func runCheckpoint(c *ids.Client) error {
	info, err := c.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s covers lsn %d (%.3fs)\n", info.Snapshot, info.LastLSN, info.Seconds)
	return nil
}

func main() {
	endpoint := flag.String("e", "http://127.0.0.1:7474", "IDS endpoint base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := ids.NewClient(*endpoint)

	var err error
	switch args[0] {
	case "query":
		err = runQuery(c, args[1:])
	case "update":
		err = runUpdate(c, args[1:])
	case "vector":
		err = runVector(c, args[1:])
	case "module":
		err = runModule(c, args[1:])
	case "snapshot":
		err = runSnapshot(c, args[1:])
	case "checkpoint":
		err = runCheckpoint(c)
	case "stats":
		err = runStats(c)
	case "profile":
		err = runProfile(c)
	case "metrics":
		err = runMetrics(c)
	case "trace":
		err = runTrace(c, args[1:])
	case "flightrec":
		err = runFlightRec(c, args[1:])
	case "insights":
		err = runInsights(c, args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runQuery(c *ids.Client, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	explain := fs.Bool("explain", false, "trace the query and render its EXPLAIN ANALYZE tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) != 1 {
		return fmt.Errorf("query takes exactly one argument")
	}
	var resp *ids.QueryResponse
	var err error
	if *explain {
		resp, err = c.QueryExplain(args[0])
	} else {
		resp, err = c.Query(args[0])
	}
	if err != nil {
		return err
	}
	t := metrics.NewTable("", resp.Vars...)
	for _, row := range resp.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v
		}
		t.AddRow(cells...)
	}
	t.Render(os.Stdout)
	fmt.Printf("\n%d rows; simulated %.3fs (wall %.3fs)\n", len(resp.Rows), resp.Makespan, resp.WallTime)
	if resp.QID != "" {
		fmt.Printf("qid: %s (server log correlation id; full trace: ids-cli trace %s)\n", resp.QID, resp.QID)
	}
	if len(resp.Phases) > 0 {
		var parts []string
		for name, v := range resp.Phases {
			parts = append(parts, fmt.Sprintf("%s=%.3fs", name, v))
		}
		sort.Strings(parts)
		fmt.Println("phases:", strings.Join(parts, " "))
	}
	if resp.Trace != nil {
		fmt.Println()
		resp.Trace.Render(os.Stdout, true)
	}
	return nil
}

func runMetrics(c *ids.Client) error {
	text, err := c.MetricsText()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func runTrace(c *ids.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("trace takes exactly one trace ID (see /trace for stored IDs)")
	}
	tr, err := c.Trace(args[0])
	if err != nil {
		return err
	}
	tr.Render(os.Stdout, true)
	return nil
}

func runFlightRec(c *ids.Client, args []string) error {
	fs := flag.NewFlagSet("flightrec", flag.ExitOnError)
	artifact := fs.String("artifact", "", "download a profile instead of the trace: heap|goroutine")
	out := fs.String("o", "", "output file for -artifact (default <qid>.<artifact>)")
	// Accept the documented qid-first form (`flightrec q000042 -artifact
	// heap`): stdlib flag parsing stops at the first positional, so peel
	// the qid off before handing the rest to the FlagSet.
	var qid string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		qid, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		if qid != "" || fs.NArg() > 1 {
			return fmt.Errorf("flightrec takes at most one qid")
		}
		qid = fs.Arg(0)
	}
	if qid == "" {
		list, err := c.FlightRecords()
		if err != nil {
			return err
		}
		t := metrics.NewTable(
			fmt.Sprintf("flight recorder: %d captures, %d suppressed by rate limit", list.Captures, list.Suppressed),
			"qid", "reason", "captured", "wall(s)", "alloc", "heap-profile", "goroutine-profile")
		for _, e := range list.Records {
			t.AddRow(e.QID, e.Reason, e.Captured.Format("15:04:05.000"),
				fmt.Sprintf("%.3f", e.WallSeconds), obs.FormatBytes(e.AllocBytes),
				fmt.Sprintf("%d bytes", e.HeapBytes), fmt.Sprintf("%d bytes", e.GoroutineBytes))
		}
		t.Render(os.Stdout)
		if len(list.Records) == 0 {
			fmt.Println("no captures (no query breached the latency or allocation budget)")
		}
		return nil
	}
	if *artifact != "" {
		path := *out
		if path == "" {
			path = qid + "." + *artifact
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := c.FlightArtifact(qid, *artifact, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s profile written to %s (%d bytes)\n", *artifact, path, info.Size())
		if *artifact == "heap" {
			fmt.Printf("inspect with: go tool pprof %s\n", path)
		}
		return nil
	}
	rec, err := c.FlightRecord(qid)
	if err != nil {
		return err
	}
	fmt.Printf("flight record %s: reason=%s captured=%s wall=%.3fs alloc=%s\n",
		rec.QID, rec.Reason, rec.Captured.Format("15:04:05.000"),
		rec.WallSeconds, obs.FormatBytes(rec.AllocBytes))
	if rec.Trace != nil {
		fmt.Println()
		rec.Trace.Render(os.Stdout, true)
	}
	fmt.Printf("\nprofiles: ids-cli flightrec %s -artifact heap|goroutine\n", qid)
	return nil
}

// runInsights renders the workload observatory: the top fingerprints
// by observed count, with rolling latency/allocation quantiles,
// cache-hit rate, tail-retained trace counts, and linked flight
// records, plus the observatory totals footer.
func runInsights(c *ids.Client, args []string) error {
	fs := flag.NewFlagSet("insights", flag.ExitOnError)
	top := fs.Int("top", 10, "fingerprint rows to show (0 = all tracked)")
	showQuery := fs.Bool("q", false, "include each fingerprint's exemplar query text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, err := c.Insights(*top)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("workload insights: %d queries, %d shapes tracked (top-%d sketch, 1-in-%d tail sample)",
			snap.TotalQueries, snap.Tracked, snap.TopK, snap.SampleN),
		"fingerprint", "count", "err", "hit%", "p50(s)", "p99(s)", "alloc-p99", "alloc-share", "tail", "flightrec", "last-qid")
	for _, f := range snap.Fingerprints {
		t.AddRow(f.Fingerprint, f.Count, f.Errors,
			fmt.Sprintf("%.0f", 100*f.CacheHitRate),
			fmt.Sprintf("%.6f", f.LatencyP50), fmt.Sprintf("%.6f", f.LatencyP99),
			obs.FormatBytes(int64(f.AllocP99)),
			fmt.Sprintf("%.1f%%", 100*f.AllocShare),
			f.Retained, strings.Join(f.FlightRecords, " "), f.LastQID)
	}
	t.Render(os.Stdout)
	if *showQuery {
		for _, f := range snap.Fingerprints {
			fmt.Printf("%s  %s\n", f.Fingerprint, f.Query)
		}
	}
	fmt.Printf("totals: %d errors, %s attributed, %d tail-retained traces, %d sketch takeovers\n",
		snap.TotalErrors, obs.FormatBytes(int64(snap.TotalAlloc)), snap.RetainedTraces, snap.Takeovers)
	return nil
}

func runModule(c *ids.Client, args []string) error {
	fs := flag.NewFlagSet("module", flag.ExitOnError)
	name := fs.String("name", "", "module name")
	file := fs.String("file", "", "IDscript source file")
	reload := fs.Bool("reload", false, "force reload")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *file == "" {
		return fmt.Errorf("module requires -name and -file")
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	if *reload {
		err = c.ReloadModule(*name, string(src))
	} else {
		err = c.LoadModule(*name, string(src))
	}
	if err != nil {
		return err
	}
	fmt.Printf("module %s loaded (reload=%v)\n", *name, *reload)
	return nil
}

func runSnapshot(c *ids.Client, args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	out := fs.String("o", "graph.idsnap", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := c.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s (%d bytes)\n", *out, info.Size())
	return nil
}

func runStats(c *ids.Client) error {
	s, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("triples:  %d\nterms:    %d\nshards:   %d\nnodes:    %d\nranks:    %d\nqueries:  %d\nudfs:     %s\n",
		s.Triples, s.Terms, s.Shards, s.Nodes, s.Ranks, s.Queries, strings.Join(s.UDFs, ", "))
	return nil
}

func runProfile(c *ids.Client) error {
	prof, err := c.Profile()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(prof))
	for n := range prof {
		names = append(names, n)
	}
	sort.Strings(names)
	t := metrics.NewTable("UDF profile (merged over ranks)",
		"udf", "execs", "total(s)", "mean(s)", "rejections")
	for _, n := range names {
		s := prof[n]
		t.AddRow(n, s.Execs, s.TotalSeconds, s.MeanSeconds(), s.Rejections)
	}
	t.Render(os.Stdout)
	return nil
}
