module ids

go 1.22
